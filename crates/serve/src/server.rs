//! The TCP serving loop: accept → per-connection threads → registry +
//! scheduler dispatch.
//!
//! The accept loop runs nonblocking with a short sleep so it can poll the
//! shutdown flag (set by a `shutdown` request or by SIGINT via
//! [`crate::signal`]). Connection handlers use read timeouts for the same
//! reason: a client idling on an open connection must not pin the server
//! alive past shutdown. Frames are strictly request/response per
//! connection; a `sim` request blocks its connection thread while its lane
//! rides a coalesced batch, which is what lets concurrent *connections*
//! batch together.
//!
//! ## Overload and shutdown contract
//!
//! Every `sim` acquires an admission permit before it touches the
//! scheduler; past the global budget the client gets a typed
//! `Overloaded { retry_after_ms }` reply instead of unbounded queueing.
//! Shutdown is a *drain*, not a cliff: the accept loop closes the listener
//! first (no new connections), admission refuses new work with
//! `ShuttingDown`, and each connection handler spends a bounded window
//! answering any frame already in flight with a typed `ShuttingDown`
//! before sending FIN — a client mid-request at SIGINT sees a typed reply
//! or a clean EOF, never an abrupt reset.

use crate::admission::AdmitError;
use crate::protocol::{
    write_wire_frame, FrameLimits, FrameReader, Request, Response, SimOutputs, StimPayload,
    WireFormat, PROTOCOL_VERSION,
};
use crate::registry::{Registry, RegistryConfig};
use crate::scheduler::{SimFailure, SimOutput, StimData};
use crate::signal;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which wire codecs a server accepts. Per-connection negotiation is by
/// first-byte sniff ([`WireFormat::sniff`]); the policy is what lets an
/// operator pin a deployment to the ubiquitous JSON wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WirePolicy {
    /// Accept both codecs, replying to each frame in the codec it arrived
    /// in (the default).
    #[default]
    Any,
    /// Accept only newline-delimited JSON; binary frames get one typed
    /// `Error` reply (in the binary codec, so the client can read it) and
    /// the connection is closed.
    JsonOnly,
}

impl WirePolicy {
    /// Does this policy admit frames in `wire`?
    pub fn allows(self, wire: WireFormat) -> bool {
        match self {
            WirePolicy::Any => true,
            WirePolicy::JsonOnly => wire == WireFormat::Json,
        }
    }

    /// The typed refusal sent when [`allows`](WirePolicy::allows) says no.
    pub fn rejection(self) -> Response {
        Response::Error {
            message: "binary wire format is disabled on this server (JSON-only policy); \
                      reconnect with the JSON codec"
                .to_string(),
        }
    }
}

impl std::str::FromStr for WirePolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<WirePolicy, String> {
        match s {
            "any" => Ok(WirePolicy::Any),
            "json" | "json-only" => Ok(WirePolicy::JsonOnly),
            other => Err(format!("unknown wire policy `{other}` (any|json)")),
        }
    }
}

/// Which I/O architecture serves connections.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IoModel {
    /// [`IoModel::EventLoop`] where available (Linux), else
    /// [`IoModel::Threaded`].
    #[default]
    Auto,
    /// One thread per connection with blocking reads — simple, portable,
    /// tops out around a few hundred concurrent clients.
    Threaded,
    /// Single-threaded nonblocking epoll readiness loop
    /// ([`crate::event_loop`]); scales to thousands of connections.
    /// Linux only.
    EventLoop,
}

impl IoModel {
    /// Resolve [`IoModel::Auto`] for this platform.
    pub fn resolve(self) -> IoModel {
        match self {
            IoModel::Auto => {
                if cfg!(target_os = "linux") {
                    IoModel::EventLoop
                } else {
                    IoModel::Threaded
                }
            }
            other => other,
        }
    }
}

impl std::str::FromStr for IoModel {
    type Err = String;
    fn from_str(s: &str) -> Result<IoModel, String> {
        match s {
            "auto" => Ok(IoModel::Auto),
            "threads" | "threaded" => Ok(IoModel::Threaded),
            "epoll" | "event-loop" => Ok(IoModel::EventLoop),
            other => Err(format!("unknown io model `{other}` (auto|threads|epoll)")),
        }
    }
}

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `"127.0.0.1:0"` (port 0 picks a free port).
    pub addr: String,
    /// Registry budget, batching, and admission parameters.
    pub registry: RegistryConfig,
    /// Connection-serving architecture.
    pub io: IoModel,
    /// Frame-size bound and shutdown drain window, shared by both I/O
    /// models.
    pub limits: FrameLimits,
    /// Which wire codecs to accept.
    pub wire: WirePolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            registry: RegistryConfig::default(),
            io: IoModel::Auto,
            limits: FrameLimits::default(),
            wire: WirePolicy::default(),
        }
    }
}

/// A running server: the bound address, its registry, and the accept
/// thread. Call [`ServerHandle::join`] to block until shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    registry: Arc<Registry>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The model registry, for preloading models in-process.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Ask the server to stop accepting and drain.
    pub fn shutdown(&self) {
        self.registry.admission().begin_drain();
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Block until the accept loop and all connection handlers exit.
    pub fn join(mut self) {
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// Bind and start serving in a background thread.
pub fn spawn_server(cfg: ServerConfig) -> io::Result<ServerHandle> {
    let io_model = cfg.io.resolve();
    if io_model == IoModel::EventLoop && !cfg!(target_os = "linux") {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll event loop requires Linux (use --io threads)",
        ));
    }
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let registry = Arc::new(Registry::new(cfg.registry));
    let shutdown = Arc::new(AtomicBool::new(false));
    let (limits, wire) = (cfg.limits, cfg.wire);
    let accept_thread = {
        let registry = Arc::clone(&registry);
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("c2nn-accept".to_string())
            .spawn(move || match io_model {
                #[cfg(target_os = "linux")]
                IoModel::EventLoop => {
                    crate::event_loop::run_event_loop(listener, registry, shutdown, limits, wire)
                }
                _ => accept_loop(listener, registry, shutdown, limits, wire),
            })?
    };
    Ok(ServerHandle {
        addr,
        registry,
        shutdown,
        accept_thread: Some(accept_thread),
    })
}

fn accept_loop(
    listener: TcpListener,
    registry: Arc<Registry>,
    shutdown: Arc<AtomicBool>,
    limits: FrameLimits,
    wire: WirePolicy,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) && !signal::interrupted() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let registry = Arc::clone(&registry);
                let shutdown = Arc::clone(&shutdown);
                let h = std::thread::Builder::new()
                    .name("c2nn-conn".to_string())
                    .spawn(move || {
                        let io = Arc::clone(registry.gauges());
                        io.accepted_total.fetch_add(1, Ordering::Relaxed);
                        io.open_connections.fetch_add(1, Ordering::Relaxed);
                        handle_connection(stream, &registry, &shutdown, limits, wire);
                        io.open_connections.fetch_sub(1, Ordering::Relaxed);
                    })
                    .expect("spawn connection handler");
                handlers.push(h);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                // transient accept failure (e.g. aborted connection) — the
                // listener itself stays usable
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        handlers.retain(|h| !h.is_finished());
    }
    // Drain order matters: stop accepting before refusing, refuse before
    // joining — otherwise a connection racing the flag could be accepted
    // and then reset without ever getting a typed reply.
    drop(listener);
    registry.admission().begin_drain();
    shutdown.store(true, Ordering::SeqCst); // handlers enter their drain window
    for h in handlers {
        let _ = h.join();
    }
}

/// Encode `resp` with `wire`'s codec, write it, and record the per-codec
/// metrics. Shared by the request path and every error reply.
fn send_response(
    writer: &mut TcpStream,
    registry: &Registry,
    wire: WireFormat,
    resp: &Response,
) -> io::Result<()> {
    let encoded = wire.codec().encode_response(resp);
    write_wire_frame(writer, &encoded)?;
    registry
        .gauges()
        .record_frame_written(wire, encoded.len() as u64);
    Ok(())
}

fn handle_connection(
    stream: TcpStream,
    registry: &Registry,
    shutdown: &AtomicBool,
    limits: FrameLimits,
    policy: WirePolicy,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = FrameReader::with_limits(stream, limits);
    // Codec of the most recent frame: framing-level failures (where no
    // frame could be popped) answer in whatever the connection last spoke.
    let mut last_wire = WireFormat::Json;
    loop {
        if shutdown.load(Ordering::SeqCst) || signal::interrupted() {
            registry.admission().begin_drain();
            drain_connection(&mut reader, &mut writer, registry, limits.drain_window);
            return;
        }
        let frame = match reader.read_frame() {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // client closed cleanly
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue; // poll tick; partial frame (if any) is preserved
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // over-long or corrupt framing: report and drop the
                // connection (byte-stream sync is no longer trustworthy)
                let resp = Response::Error {
                    message: e.to_string(),
                };
                let _ = send_response(&mut writer, registry, last_wire, &resp);
                return;
            }
            Err(_) => return,
        };
        last_wire = frame.wire;
        registry
            .gauges()
            .record_frame_read(frame.wire, frame.len() as u64);
        // An HTTP scrape on the framed port: the request line arrives as
        // one JSON "frame" (it ends in \n). Answer and close — same
        // contract as the event loop's sniffer.
        if frame.wire == WireFormat::Json {
            if let Some(path) = std::str::from_utf8(&frame.bytes)
                .ok()
                .and_then(|t| t.strip_prefix("GET "))
                .map(|r| r.split(' ').next().unwrap_or(""))
            {
                let body = if path == "/metrics" || path.starts_with("/metrics?") {
                    registry
                        .gauges()
                        .http_scrapes_total
                        .fetch_add(1, Ordering::Relaxed);
                    crate::metrics::http_ok(&crate::metrics::render_for(registry))
                } else {
                    crate::metrics::http_not_found()
                };
                let _ = writer.write_all(&body);
                let _ = writer.shutdown(std::net::Shutdown::Write);
                return;
            }
        }
        if !policy.allows(frame.wire) {
            // typed refusal in the client's own codec, then close: a
            // binary client against a JSON-only server must fail fast and
            // legibly, never hang
            let _ = send_response(&mut writer, registry, frame.wire, &policy.rejection());
            return;
        }
        let request = match frame.decode_request() {
            Ok(r) => r,
            Err(e) => {
                let resp = Response::Error {
                    message: e.to_string(),
                };
                if send_response(&mut writer, registry, frame.wire, &resp).is_err() {
                    return;
                }
                continue;
            }
        };
        let is_shutdown = matches!(request, Request::Shutdown);
        let response = dispatch(request, registry);
        if send_response(&mut writer, registry, frame.wire, &response).is_err() {
            return;
        }
        if is_shutdown {
            registry.admission().begin_drain();
            shutdown.store(true, Ordering::SeqCst);
            return;
        }
    }
}

/// Give a connection caught by shutdown a graceful exit: keep reading for
/// up to [`FrameLimits::drain_window`], answer every complete frame that
/// arrives with a typed `ShuttingDown` (in the frame's own codec), then
/// half-close the write side so the client sees a clean EOF instead of a
/// connection reset.
fn drain_connection(
    reader: &mut FrameReader<TcpStream>,
    writer: &mut TcpStream,
    registry: &Registry,
    window: Duration,
) {
    let deadline = Instant::now() + window;
    while Instant::now() < deadline {
        match reader.read_frame() {
            Ok(Some(frame)) => {
                // The frame may be garbage — it does not matter; whatever
                // the request was, the answer during drain is the same.
                if send_response(writer, registry, frame.wire, &Response::ShuttingDown).is_err() {
                    break;
                }
            }
            Ok(None) => break, // client closed: EOF both ways
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if reader.buffered() == 0 {
                    break; // line idle, nothing mid-send — close now
                }
                // partial frame buffered: the client is mid-send, give
                // them the rest of the window to finish it
            }
            Err(_) => break,
        }
    }
    let _ = writer.shutdown(std::net::Shutdown::Write); // FIN, not RST
}

fn dispatch(request: Request, registry: &Registry) -> Response {
    match request {
        Request::Ping => Response::Pong {
            version: PROTOCOL_VERSION,
        },
        Request::Load {
            name,
            model,
            deadline_ms,
        } => {
            match registry.admission().try_admit_load() {
                Ok(()) => {}
                Err(e) => return admit_error_response(e),
            }
            // a load that arrives already past its deadline is shed before
            // the expensive parse + validation
            if deadline_ms == Some(0) {
                return Response::DeadlineExceeded;
            }
            match registry.load(&name, &model) {
                Ok(model) => Response::Loaded {
                    name,
                    bytes: model.bytes as u64,
                },
                Err(message) => Response::Error { message },
            }
        }
        Request::Sim {
            model,
            stim,
            deadline_ms,
        } => run_sim(registry, &model, stim, deadline_ms),
        Request::Stats => Response::Stats {
            models: registry.stats(),
            server: registry.server_report(),
        },
        Request::Shutdown => Response::ShuttingDown,
    }
}

fn admit_error_response(e: AdmitError) -> Response {
    match e {
        AdmitError::Overloaded { retry_after_ms } => Response::Overloaded { retry_after_ms },
        AdmitError::ShuttingDown => Response::ShuttingDown,
    }
}

fn run_sim(
    registry: &Registry,
    model: &str,
    stim: StimPayload,
    deadline_ms: Option<u64>,
) -> Response {
    let received = Instant::now();
    // The permit spans admission → reply: it is what bounds end-to-end
    // in-flight work, not just queue depth.
    let _permit = match registry.admission().try_admit_sim() {
        Ok(p) => p,
        Err(e) => return admit_error_response(e),
    };
    let Some(served) = registry.get(model) else {
        return Response::Error {
            message: format!("unknown model '{model}' (load it first)"),
        };
    };
    if let Err(e) = registry
        .admission()
        .check_model_budget(served.stats.queue_depth.load(Ordering::Relaxed))
    {
        return admit_error_response(e);
    }
    let pi = served.nn.num_primary_inputs;
    let data: StimData = match stim {
        StimPayload::Text(text) => match c2nn_core::parse_stim(&text, pi) {
            Ok(s) => s.into(),
            Err(e) => {
                return Response::Error {
                    message: e.to_string(),
                }
            }
        },
        // Packed planes flow to the scheduler as-is — no per-lane parse,
        // no Vec<bool> expansion. Only the width needs checking here; the
        // bit-plane shape is already validated by the codec.
        StimPayload::Packed(planes) => {
            if planes.features() != pi {
                return Response::Error {
                    message: format!(
                        "stimulus planes carry {} input bits; model '{model}' expects {pi}",
                        planes.features()
                    ),
                };
            }
            planes.into()
        }
    };
    let deadline = deadline_ms.map(|ms| received + Duration::from_millis(ms));
    let rx = served.submit(data, deadline);
    match rx.recv() {
        Ok(result) => sim_reply(result),
        // The batcher dropped the reply channel — only happens at teardown.
        Err(_) => Response::ShuttingDown,
    }
}

/// Map a scheduler result to its wire reply — shared by the threaded path
/// (after `rx.recv()`) and the event loop's completion hook. Packed
/// results stay packed (the codec decides how to render them); lane
/// results keep the legacy MSB-first strings.
pub(crate) fn sim_reply(result: Result<SimOutput, SimFailure>) -> Response {
    match result {
        Ok(out) => {
            let cycles = out.num_cycles() as u64;
            let outputs = match out {
                SimOutput::Lanes(lanes) => SimOutputs::Text(
                    lanes
                        .iter()
                        .map(|cycle| {
                            // LSB-first bit vector → MSB-first string,
                            // mirroring the `.stim` input reading order
                            cycle
                                .iter()
                                .rev()
                                .map(|&b| if b { '1' } else { '0' })
                                .collect()
                        })
                        .collect(),
                ),
                SimOutput::Packed(planes) => SimOutputs::Packed(planes),
            };
            Response::SimResult { outputs, cycles }
        }
        Err(SimFailure::DeadlineExceeded) => Response::DeadlineExceeded,
        Err(SimFailure::ShuttingDown) => Response::ShuttingDown,
        Err(failure @ SimFailure::Failed(_)) => Response::Error {
            message: failure.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::scheduler::BatchConfig;
    use c2nn_circuits::generators::counter;
    use c2nn_core::{compile, CompileOptions};

    fn test_server(max_batch: usize, max_wait_ms: u64) -> ServerHandle {
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            registry: RegistryConfig {
                byte_budget: usize::MAX,
                batch: BatchConfig {
                    max_batch,
                    max_wait: Duration::from_millis(max_wait_ms),
                    ..BatchConfig::default()
                },
                ..RegistryConfig::default()
            },
            ..ServerConfig::default()
        };
        spawn_server(cfg).unwrap()
    }

    #[test]
    fn ping_load_sim_stats_shutdown() {
        let server = test_server(8, 1);
        let addr = server.local_addr();
        let mut c = Client::connect(&addr.to_string()).unwrap();
        assert_eq!(c.ping().unwrap(), PROTOCOL_VERSION);

        let nn = compile(&counter(4), CompileOptions::with_l(4)).unwrap();
        let bytes = c.load("ctr", &nn.to_json_string()).unwrap();
        assert!(bytes > 0);

        let outputs = c.sim("ctr", "1 x4\n").unwrap();
        assert_eq!(outputs, vec!["0000", "0001", "0010", "0011"]);

        let stats = c.stats().unwrap();
        assert_eq!(stats.models.len(), 1);
        assert_eq!(stats.models[0].name, "ctr");
        assert_eq!(stats.models[0].requests, 1);
        assert!(
            !stats.models[0].backend.is_empty(),
            "stats carry the backend label"
        );
        assert!(
            stats.models[0].auto_selected,
            "default config selects by cost model"
        );
        assert_eq!(stats.server.pressure, "nominal");
        assert!(!stats.server.draining);
        assert_eq!(stats.server.backends.len(), 1);
        assert_eq!(stats.server.backends[0].backend, stats.models[0].backend);
        assert_eq!(stats.server.backends[0].models, 1);
        assert_eq!(stats.server.backends[0].requests, 1);

        c.shutdown().unwrap();
        server.join();
    }

    #[test]
    fn errors_keep_the_connection_usable() {
        let server = test_server(8, 1);
        let addr = server.local_addr();
        let mut c = Client::connect(&addr.to_string()).unwrap();

        // unknown model
        let err = c.sim("ghost", "1\n").unwrap_err();
        assert!(err.to_string().contains("unknown model"), "{err}");

        // bad stimulus width
        let nn = compile(&counter(4), CompileOptions::with_l(4)).unwrap();
        c.load("ctr", &nn.to_json_string()).unwrap();
        let err = c.sim("ctr", "101\n").unwrap_err();
        assert!(err.to_string().contains("input bits"), "{err}");

        // malformed model JSON
        let err = c.load("bad", "{\"nope\":1}").unwrap_err();
        assert!(err.to_string().contains("rejected"), "{err}");

        // connection still works
        assert_eq!(c.sim("ctr", "1\n").unwrap(), vec!["0000"]);

        server.shutdown();
        server.join();
    }

    #[test]
    fn in_process_preload_is_visible_to_clients() {
        let server = test_server(8, 1);
        let nn = compile(&counter(4), CompileOptions::with_l(4)).unwrap();
        server.registry().install("pre", nn).unwrap();
        let mut c = Client::connect(&server.local_addr().to_string()).unwrap();
        assert_eq!(c.sim("pre", "1 x2\n").unwrap(), vec!["0000", "0001"]);
        server.shutdown();
        server.join();
    }

    #[test]
    fn binary_wire_end_to_end() {
        use c2nn_core::BitTensor;
        let server = test_server(8, 1);
        let addr = server.local_addr().to_string();
        let mut c = Client::connect_wire(&addr, WireFormat::Binary).unwrap();
        assert_eq!(c.wire(), WireFormat::Binary);
        assert_eq!(c.ping().unwrap(), PROTOCOL_VERSION);

        let nn = compile(&counter(4), CompileOptions::with_l(4)).unwrap();
        assert!(c.load("ctr", &nn.to_json_string()).unwrap() > 0);

        // text stimulus over the binary wire
        assert_eq!(
            c.sim("ctr", "1 x4\n").unwrap(),
            vec!["0000", "0001", "0010", "0011"]
        );

        // packed stimulus: clock high for 4 cycles on the single input
        let mut stim = BitTensor::zeros(1, 4);
        for cyc in 0..4 {
            stim.set_bit(0, cyc, true);
        }
        let out = c.sim_packed("ctr", &stim).unwrap();
        assert_eq!(out.features(), 4, "4 counter output bits");
        assert_eq!(out.batch(), 4, "one result per cycle");
        // cycle 3 counts to 0b0011: output bits 0 and 1 set
        assert!(out.get_bit(0, 3) && out.get_bit(1, 3));
        assert!(!out.get_bit(2, 3) && !out.get_bit(3, 3));

        // a same-server JSON client agrees bit-for-bit on the text path
        let mut j = Client::connect(&addr).unwrap();
        assert_eq!(
            j.sim("ctr", "1 x4\n").unwrap(),
            c.sim("ctr", "1 x4\n").unwrap()
        );

        // per-codec traffic shows up in the stats report
        let stats = c.stats().unwrap();
        assert!(stats.server.wire_binary_frames > 0, "{stats:?}");
        assert!(stats.server.wire_json_frames > 0, "{stats:?}");

        c.shutdown().unwrap();
        server.join();
    }

    #[test]
    fn json_only_policy_rejects_binary_with_typed_error() {
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            wire: WirePolicy::JsonOnly,
            ..ServerConfig::default()
        };
        let server = spawn_server(cfg).unwrap();
        let addr = server.local_addr().to_string();

        // the rejection is delivered in the client's own codec, decodable
        let mut b = Client::connect_wire(&addr, WireFormat::Binary).unwrap();
        let err = b.ping().unwrap_err();
        assert!(
            err.to_string().contains("JSON-only"),
            "typed rejection names the policy: {err}"
        );

        // JSON clients are untouched
        let mut j = Client::connect(&addr).unwrap();
        assert_eq!(j.ping().unwrap(), PROTOCOL_VERSION);

        server.shutdown();
        server.join();
    }

    #[test]
    fn wire_policy_parses() {
        assert_eq!("any".parse::<WirePolicy>().unwrap(), WirePolicy::Any);
        assert_eq!("json".parse::<WirePolicy>().unwrap(), WirePolicy::JsonOnly);
        assert_eq!(
            "json-only".parse::<WirePolicy>().unwrap(),
            WirePolicy::JsonOnly
        );
        assert!("carrier-pigeon".parse::<WirePolicy>().is_err());
    }
}
