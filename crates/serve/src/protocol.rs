//! Wire protocol: newline-delimited JSON frames over a byte stream.
//!
//! Every frame is one JSON document on one line (the encoder never emits a
//! raw newline — strings escape it as `\n`), terminated by `\n`. Frames are
//! untrusted input: decoding never panics, every defect is a typed
//! [`ProtocolError`], and frame length is bounded by [`MAX_FRAME`] so a
//! hostile peer cannot balloon server memory.
//!
//! The protocol is deliberately request/response over one connection (no
//! multiplexing): clients that want concurrency open more connections,
//! which is also how the micro-batching scheduler receives coalescable
//! load.

use c2nn_json::{Json, ToJson};
use std::fmt;
use std::io::{self, Read, Write};

/// Protocol revision spoken by this build. v2 added optional request
/// deadlines and the typed overload replies (`overloaded`,
/// `deadline_exceeded`) plus the server-level stats block. v3 added
/// execution-backend labels: `backend`/`auto_selected` on every model
/// stats report and the per-backend `backends` rollup in the server
/// block.
pub const PROTOCOL_VERSION: u32 = 3;

/// Hard upper bound on one frame's length in bytes (models ship inline in
/// `load` frames, so this is generous).
pub const MAX_FRAME: usize = 64 << 20;

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Load a compiled model document into the registry under `name`.
    Load {
        /// registry key for subsequent `sim` requests
        name: String,
        /// the full `c2nn-model` JSON document, as text
        model_json: String,
        /// optional deadline, milliseconds from server receipt; past it the
        /// server replies `DeadlineExceeded` instead of doing the work
        deadline_ms: Option<u64>,
    },
    /// Run one testbench against model `model`. `stim` is `.stim` text
    /// (one MSB-first input line per cycle, `xN` repeats, `#` comments).
    Sim {
        /// registry key of a previously loaded model
        model: String,
        /// the testbench in `.stim` format
        stim: String,
        /// optional deadline, milliseconds from server receipt; lanes whose
        /// deadline passes before batch dispatch are shed with a typed
        /// `DeadlineExceeded` reply
        deadline_ms: Option<u64>,
    },
    /// Fetch per-model serving counters.
    Stats,
    /// Stop accepting connections and shut the server down.
    Shutdown,
}

/// Per-model serving counters reported by [`Response::Stats`].
#[derive(Clone, Debug, PartialEq)]
pub struct ModelStatsReport {
    /// registry key
    pub name: String,
    /// execution backend serving this model's batches (registry name,
    /// e.g. `pooled-csr`, `bitplane`)
    pub backend: String,
    /// whether the calibrated cost model picked the backend
    /// (`--backend auto`) rather than the operator naming it
    pub auto_selected: bool,
    /// model size in bytes (registry accounting)
    pub bytes: u64,
    /// total `sim` requests accepted for this model
    pub requests: u64,
    /// batched simulator runs executed
    pub batches: u64,
    /// total lanes across all batches (== requests that reached a batch)
    pub lanes: u64,
    /// `lanes / batches` — the coalescing win; 1.0 means no coalescing
    pub mean_occupancy: f64,
    /// requests currently queued or in flight
    pub queue_depth: u64,
    /// p50 request latency (enqueue → reply), microseconds (bucket upper
    /// bound)
    pub p50_us: u64,
    /// p99 request latency, microseconds (bucket upper bound)
    pub p99_us: u64,
    /// lanes shed with `DeadlineExceeded` before batch dispatch
    pub deadline_exceeded: u64,
}

c2nn_json::json_struct!(ModelStatsReport {
    name,
    backend,
    auto_selected,
    bytes,
    requests,
    batches,
    lanes,
    mean_occupancy,
    queue_depth,
    p50_us,
    p99_us,
    deadline_exceeded,
});

/// Per-backend selection rollup inside [`ServerStatsReport`]: how many
/// models each execution backend is serving, how many of those the cost
/// model chose, and the request volume they carried.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct BackendSelectionReport {
    /// backend registry name
    pub backend: String,
    /// models currently served on this backend
    pub models: u64,
    /// of those, models the cost model selected (`--backend auto`)
    pub auto_selected: u64,
    /// total `sim` requests accepted across those models
    pub requests: u64,
}

c2nn_json::json_struct!(BackendSelectionReport {
    backend,
    models,
    auto_selected,
    requests,
});

/// Server-wide overload/health counters reported by [`Response::Stats`]
/// beside the per-model reports.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ServerStatsReport {
    /// `sim` requests currently between admission and reply.
    pub inflight: u64,
    /// configured global in-flight budget
    pub max_inflight: u64,
    /// current pressure level: `"nominal"`, `"elevated"`, or `"saturated"`
    pub pressure: String,
    /// is the server draining (refusing all new work)?
    pub draining: bool,
    /// `sim` requests refused with `Overloaded`
    pub rejected_sims: u64,
    /// `load` requests refused with `Overloaded`
    pub rejected_loads: u64,
    /// requests refused with `ShuttingDown` during drain
    pub rejected_draining: u64,
    /// worker-pool epochs that lost a participant to a panic
    pub pool_poisoned_epochs: u64,
    /// chaos injections performed (0 unless `--chaos` armed a schedule)
    pub chaos_injected: u64,
    /// per-backend selection rollup over the currently served models
    pub backends: Vec<BackendSelectionReport>,
}

c2nn_json::json_struct!(ServerStatsReport {
    inflight,
    max_inflight,
    pressure,
    draining,
    rejected_sims,
    rejected_loads,
    rejected_draining,
    pool_poisoned_epochs,
    chaos_injected,
    backends,
});

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`]; carries the protocol revision.
    Pong {
        /// [`PROTOCOL_VERSION`] of the server
        version: u32,
    },
    /// Model admitted to the registry.
    Loaded {
        /// registry key
        name: String,
        /// model size counted against the registry byte budget
        bytes: u64,
    },
    /// Testbench results: one MSB-first output bit string per cycle.
    SimResult {
        /// per-cycle primary outputs, MSB-first (same reading order as the
        /// `.stim` input format)
        outputs: Vec<String>,
        /// cycles simulated (== `outputs.len()`)
        cycles: u64,
    },
    /// Reply to [`Request::Stats`].
    Stats {
        /// one report per registered model
        models: Vec<ModelStatsReport>,
        /// server-wide overload/health counters
        server: ServerStatsReport,
    },
    /// Server acknowledges [`Request::Shutdown`], or refuses a new request
    /// because it is draining. Either way: no new work, in-flight work
    /// completes, the connection closes cleanly.
    ShuttingDown,
    /// Admission control refused the request: the in-flight budget is
    /// exhausted (or, for `load`s, pressure is elevated). Retry after the
    /// hinted delay; the connection stays usable.
    Overloaded {
        /// suggested client backoff in milliseconds (always `1..=1000`)
        retry_after_ms: u64,
    },
    /// The request's `deadline_ms` passed before the server could do the
    /// work; the lane was shed without simulating. The connection stays
    /// usable.
    DeadlineExceeded,
    /// The request failed; the connection stays usable.
    Error {
        /// human-readable diagnostic
        message: String,
    },
}

/// Why a frame could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolError {
    /// What went wrong.
    pub message: String,
}

impl ProtocolError {
    fn new(message: impl Into<String>) -> Self {
        ProtocolError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.message)
    }
}

impl std::error::Error for ProtocolError {}

fn str_field(v: &Json, name: &str) -> Result<String, ProtocolError> {
    c2nn_json::field::<String>(v, name).map_err(|e| ProtocolError::new(e.to_string()))
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

impl Request {
    /// Serialize to a single-line JSON frame body (no trailing newline).
    pub fn encode(&self) -> String {
        let v = match self {
            Request::Ping => Json::Obj(vec![("op".into(), "ping".to_json())]),
            Request::Load {
                name,
                model_json,
                deadline_ms,
            } => {
                let mut fields = vec![
                    ("op".into(), "load".to_json()),
                    ("name".into(), name.to_json()),
                    ("model_json".into(), model_json.to_json()),
                ];
                if let Some(d) = deadline_ms {
                    fields.push(("deadline_ms".into(), d.to_json()));
                }
                Json::Obj(fields)
            }
            Request::Sim {
                model,
                stim,
                deadline_ms,
            } => {
                let mut fields = vec![
                    ("op".into(), "sim".to_json()),
                    ("model".into(), model.to_json()),
                    ("stim".into(), stim.to_json()),
                ];
                if let Some(d) = deadline_ms {
                    fields.push(("deadline_ms".into(), d.to_json()));
                }
                Json::Obj(fields)
            }
            Request::Stats => Json::Obj(vec![("op".into(), "stats".to_json())]),
            Request::Shutdown => Json::Obj(vec![("op".into(), "shutdown".to_json())]),
        };
        v.to_string_compact()
    }

    /// Decode a frame body. Never panics.
    pub fn decode(text: &str) -> Result<Request, ProtocolError> {
        let v = c2nn_json::parse(text).map_err(|e| ProtocolError::new(e.to_string()))?;
        let op = str_field(&v, "op")?;
        match op.as_str() {
            "ping" => Ok(Request::Ping),
            "load" => Ok(Request::Load {
                name: str_field(&v, "name")?,
                model_json: str_field(&v, "model_json")?,
                deadline_ms: c2nn_json::opt_field(&v, "deadline_ms")
                    .map_err(|e| ProtocolError::new(e.to_string()))?,
            }),
            "sim" => Ok(Request::Sim {
                model: str_field(&v, "model")?,
                stim: str_field(&v, "stim")?,
                deadline_ms: c2nn_json::opt_field(&v, "deadline_ms")
                    .map_err(|e| ProtocolError::new(e.to_string()))?,
            }),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtocolError::new(format!("unknown op `{other}`"))),
        }
    }
}

impl Response {
    /// Serialize to a single-line JSON frame body (no trailing newline).
    pub fn encode(&self) -> String {
        let v = match self {
            Response::Pong { version } => Json::Obj(vec![
                ("ok".into(), true.to_json()),
                ("op".into(), "pong".to_json()),
                ("version".into(), version.to_json()),
            ]),
            Response::Loaded { name, bytes } => Json::Obj(vec![
                ("ok".into(), true.to_json()),
                ("op".into(), "loaded".to_json()),
                ("name".into(), name.to_json()),
                ("bytes".into(), bytes.to_json()),
            ]),
            Response::SimResult { outputs, cycles } => Json::Obj(vec![
                ("ok".into(), true.to_json()),
                ("op".into(), "sim".to_json()),
                ("outputs".into(), outputs.to_json()),
                ("cycles".into(), cycles.to_json()),
            ]),
            Response::Stats { models, server } => Json::Obj(vec![
                ("ok".into(), true.to_json()),
                ("op".into(), "stats".to_json()),
                ("models".into(), models.to_json()),
                ("server".into(), server.to_json()),
            ]),
            Response::ShuttingDown => Json::Obj(vec![
                ("ok".into(), true.to_json()),
                ("op".into(), "shutdown".to_json()),
            ]),
            Response::Overloaded { retry_after_ms } => Json::Obj(vec![
                ("ok".into(), false.to_json()),
                ("kind".into(), "overloaded".to_json()),
                ("retry_after_ms".into(), retry_after_ms.to_json()),
            ]),
            Response::DeadlineExceeded => Json::Obj(vec![
                ("ok".into(), false.to_json()),
                ("kind".into(), "deadline_exceeded".to_json()),
            ]),
            Response::Error { message } => Json::Obj(vec![
                ("ok".into(), false.to_json()),
                ("error".into(), message.to_json()),
            ]),
        };
        v.to_string_compact()
    }

    /// Decode a frame body. Never panics.
    pub fn decode(text: &str) -> Result<Response, ProtocolError> {
        let v = c2nn_json::parse(text).map_err(|e| ProtocolError::new(e.to_string()))?;
        let ok = v
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| ProtocolError::new("missing `ok` field"))?;
        let field_err = |e: c2nn_json::DecodeError| ProtocolError::new(e.to_string());
        if !ok {
            // typed rejections carry a `kind`; untyped failures an `error`
            return match c2nn_json::opt_field::<String>(&v, "kind")
                .map_err(field_err)?
                .as_deref()
            {
                Some("overloaded") => Ok(Response::Overloaded {
                    retry_after_ms: c2nn_json::field(&v, "retry_after_ms").map_err(field_err)?,
                }),
                Some("deadline_exceeded") => Ok(Response::DeadlineExceeded),
                Some(other) => Err(ProtocolError::new(format!(
                    "unknown failure kind `{other}`"
                ))),
                None => Ok(Response::Error {
                    message: str_field(&v, "error")?,
                }),
            };
        }
        let op = str_field(&v, "op")?;
        match op.as_str() {
            "pong" => Ok(Response::Pong {
                version: c2nn_json::field(&v, "version").map_err(field_err)?,
            }),
            "loaded" => Ok(Response::Loaded {
                name: str_field(&v, "name")?,
                bytes: c2nn_json::field(&v, "bytes").map_err(field_err)?,
            }),
            "sim" => Ok(Response::SimResult {
                outputs: c2nn_json::field(&v, "outputs").map_err(field_err)?,
                cycles: c2nn_json::field(&v, "cycles").map_err(field_err)?,
            }),
            "stats" => Ok(Response::Stats {
                models: c2nn_json::field(&v, "models").map_err(field_err)?,
                // absent from pre-v2 servers → defaults, so old captures decode
                server: c2nn_json::opt_field(&v, "server")
                    .map_err(field_err)?
                    .unwrap_or_default(),
            }),
            "shutdown" => Ok(Response::ShuttingDown),
            other => Err(ProtocolError::new(format!("unknown response op `{other}`"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Write one frame (body + `\n`) and flush.
pub fn write_frame<W: Write>(w: &mut W, body: &str) -> io::Result<()> {
    debug_assert!(!body.contains('\n'), "frame body must be a single line");
    w.write_all(body.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Push-based incremental frame splitter: the event loop's per-connection
/// read buffer. Bytes go in via [`push`](FrameBuffer::push) as the socket
/// yields them; complete newline-terminated frames come out via
/// [`next_frame`](FrameBuffer::next_frame). [`FrameReader`] wraps the same
/// buffer behind a pull-style `Read` source, so the framing rules (length
/// bound, newline scan) live in exactly one place.
#[derive(Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    // bytes before this offset are known newline-free, so each push only
    // costs a scan of fresh bytes (a 64 MiB frame arriving in 8 KiB reads
    // must not cost a quadratic re-scan)
    scanned: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Append bytes read from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (complete frames not yet popped plus any
    /// partial frame). The server's drain path uses this to tell "client
    /// mid-send, wait for their frame" from "line is idle, close now".
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Is nothing buffered at all?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// First buffered bytes without consuming them (the event loop sniffs
    /// `GET ` here to tell an HTTP metrics scrape from a JSON frame).
    pub fn peek(&self) -> &[u8] {
        &self.buf
    }

    /// Pop the next complete frame body (without the trailing newline).
    ///
    /// * `Ok(Some(bytes))` — one complete frame;
    /// * `Ok(None)` — no complete frame buffered yet;
    /// * `Err(InvalidData)` — the partial frame already exceeds
    ///   [`MAX_FRAME`]; the buffer is cleared because framing is no longer
    ///   trustworthy.
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        if let Some(off) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
            let pos = self.scanned + off;
            let mut frame: Vec<u8> = self.buf.drain(..=pos).collect();
            frame.pop(); // the newline
            self.scanned = 0;
            return Ok(Some(frame));
        }
        self.scanned = self.buf.len();
        if self.buf.len() > MAX_FRAME {
            self.buf.clear();
            self.scanned = 0;
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame exceeds {MAX_FRAME} bytes"),
            ));
        }
        Ok(None)
    }

    /// Drop everything buffered.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.scanned = 0;
    }
}

/// Incremental frame reader over any byte stream.
///
/// Unlike `BufRead::read_line`, a read timeout (`WouldBlock` /`TimedOut`)
/// surfaces as an error *without losing buffered partial data* — the server
/// uses short read timeouts to poll its shutdown flag, then resumes reading
/// the same frame.
pub struct FrameReader<R> {
    inner: R,
    frames: FrameBuffer,
}

impl<R: Read> FrameReader<R> {
    /// Wrap a byte stream.
    pub fn new(inner: R) -> Self {
        FrameReader {
            inner,
            frames: FrameBuffer::new(),
        }
    }

    /// The underlying stream.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Bytes of an incomplete frame currently buffered. The server's drain
    /// path uses this to tell "client mid-send, wait for their frame" from
    /// "line is idle, close now".
    pub fn buffered(&self) -> usize {
        self.frames.buffered()
    }

    /// Read the next frame body (without the trailing newline).
    ///
    /// * `Ok(Some(bytes))` — one complete frame;
    /// * `Ok(None)` — clean end of stream (no partial frame pending);
    /// * `Err(e)` with `WouldBlock`/`TimedOut` — no complete frame *yet*;
    ///   call again, buffered bytes are kept;
    /// * other `Err` — stream error, over-long frame ([`MAX_FRAME`]), or a
    ///   stream that ended mid-frame.
    pub fn read_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        loop {
            if let Some(frame) = self.frames.next_frame()? {
                return Ok(Some(frame));
            }
            let mut chunk = [0u8; 8192];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    if self.frames.is_empty() {
                        return Ok(None);
                    }
                    self.frames.clear();
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "stream ended mid-frame",
                    ));
                }
                Ok(n) => self.frames.push(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_split_across_reads() {
        /// Yields one byte per read call.
        struct Trickle(Cursor<Vec<u8>>);
        impl Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                let take = 1.min(buf.len());
                self.0.read(&mut buf[..take])
            }
        }
        let mut r = FrameReader::new(Trickle(Cursor::new(b"abc\ndef\n".to_vec())));
        assert_eq!(r.read_frame().unwrap(), Some(b"abc".to_vec()));
        assert_eq!(r.read_frame().unwrap(), Some(b"def".to_vec()));
        assert_eq!(r.read_frame().unwrap(), None);
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let mut r = FrameReader::new(Cursor::new(b"partial".to_vec()));
        assert!(r.read_frame().is_err());
    }

    #[test]
    fn encoded_frames_are_single_lines() {
        let req = Request::Sim {
            model: "with\nnewline".into(),
            stim: "10\n01 x3\n# comment\n".into(),
            deadline_ms: Some(250),
        };
        let body = req.encode();
        assert!(!body.contains('\n'), "{body}");
        assert_eq!(Request::decode(&body).unwrap(), req);
    }

    #[test]
    fn deadline_field_is_optional_on_the_wire() {
        // a pre-v2 client frame without deadline_ms still decodes
        let body = r#"{"op":"sim","model":"m","stim":"1\n"}"#;
        assert_eq!(
            Request::decode(body).unwrap(),
            Request::Sim {
                model: "m".into(),
                stim: "1\n".into(),
                deadline_ms: None
            }
        );
    }

    #[test]
    fn typed_rejections_roundtrip() {
        for resp in [
            Response::Overloaded { retry_after_ms: 7 },
            Response::DeadlineExceeded,
            Response::ShuttingDown,
        ] {
            let body = resp.encode();
            assert!(!body.contains('\n'));
            assert_eq!(Response::decode(&body).unwrap(), resp);
        }
        // unknown failure kinds are a protocol error, not a silent Error{}
        assert!(Response::decode(r#"{"ok":false,"kind":"meteor_strike"}"#).is_err());
    }

    #[test]
    fn pre_v2_stats_without_server_block_decodes() {
        let body = r#"{"ok":true,"op":"stats","models":[]}"#;
        match Response::decode(body).unwrap() {
            Response::Stats { models, server } => {
                assert!(models.is_empty());
                assert_eq!(server, ServerStatsReport::default());
            }
            other => panic!("wanted stats, got {other:?}"),
        }
    }
}
