//! Wire protocol: a codec layer with two interchangeable frame formats.
//!
//! Every connection speaks one of two codecs, negotiated by sniffing the
//! first byte of the first frame (see [`WireFormat::sniff`]):
//!
//! * **JSON** — newline-delimited JSON documents, one frame per line,
//!   bit-for-bit compatible with every protocol revision since v1. A JSON
//!   frame's first byte is `{` (or anything that is not the binary magic),
//!   so legacy clients keep working unmodified.
//! * **Binary** — length-prefixed frames whose stimulus/result payloads
//!   are the *same feature-major u64 bit-plane words* that
//!   [`BitTensor`](c2nn_core::BitTensor) uses, so a `sim` request can flow
//!   from the socket buffer into the backend with no per-lane text
//!   parsing and no intermediate `Vec<bool>` allocation. Frame layout:
//!
//!   ```text
//!   +------+------+------+-------+----------------+=============+
//!   | 0xC2 | ver  | kind | flags | payload_len u32 LE | payload |
//!   +------+------+------+-------+----------------+=============+
//!    magic  (=1)                  (bounded by FrameLimits)
//!   ```
//!
//! Frames are untrusted input: decoding never panics, every defect is a
//! typed [`ProtocolError`], and frame length is bounded by
//! [`FrameLimits::max_frame`] so a hostile peer cannot balloon server
//! memory. Framing-level corruption (bad magic version, oversize length)
//! poisons the stream and surfaces as `io::ErrorKind::InvalidData`;
//! content-level defects (unknown kind, ragged-tail garbage, truncated
//! payload fields) leave framing sound and yield a typed error reply on a
//! connection that stays usable.
//!
//! The protocol is deliberately request/response over one connection (no
//! multiplexing): clients that want concurrency open more connections,
//! which is also how the micro-batching scheduler receives coalescable
//! load.

use c2nn_core::{parse_stim, BitTensor, Stimulus};
use c2nn_json::{Json, ToJson};
use std::fmt;
use std::io::{self, Read, Write};
use std::time::Duration;

/// Protocol revision spoken by this build. v2 added optional request
/// deadlines and the typed overload replies (`overloaded`,
/// `deadline_exceeded`) plus the server-level stats block. v3 added
/// execution-backend labels: `backend`/`auto_selected` on every model
/// stats report and the per-backend `backends` rollup in the server
/// block. v4 added the length-prefixed binary wire (magic `0xC2`),
/// per-connection codec sniffing, packed bit-plane stimulus/result
/// payloads on both codecs, the once-framed `model` document in JSON
/// `load` frames, and the per-codec frame counters in the server stats
/// block.
pub const PROTOCOL_VERSION: u32 = 4;

/// Hard upper bound on one frame's length in bytes (models ship inline in
/// `load` frames, so this is generous). This is the default for
/// [`FrameLimits::max_frame`].
pub const MAX_FRAME: usize = 64 << 20;

/// First byte of every binary frame. Deliberately not valid leading UTF-8
/// for a JSON document and not `G` (the HTTP metrics sniff), so one byte
/// settles the codec.
pub const BINARY_MAGIC: u8 = 0xC2;

/// Binary frame-format revision carried in every binary frame header.
pub const BINARY_WIRE_VERSION: u8 = 1;

/// Binary frame header length: magic, version, kind, flags, payload_len.
const HEADER_LEN: usize = 8;

/// Framing limits shared by every read path (the threaded
/// [`FrameReader`] and the epoll event loop), so the bounds are enforced
/// in exactly one place instead of two separately hard-coded constants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameLimits {
    /// Hard upper bound on one frame's length in bytes.
    pub max_frame: usize,
    /// How long a drain waits for a connection's partial frame to
    /// complete before closing the line anyway.
    pub drain_window: Duration,
}

impl Default for FrameLimits {
    fn default() -> Self {
        FrameLimits {
            max_frame: MAX_FRAME,
            drain_window: Duration::from_millis(250),
        }
    }
}

/// Which codec a frame (or connection) speaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WireFormat {
    /// Newline-delimited JSON documents (protocol v1+).
    Json,
    /// Length-prefixed binary frames with bit-plane payloads (v4+).
    Binary,
}

impl WireFormat {
    /// Classify a frame by its first byte: [`BINARY_MAGIC`] means binary,
    /// anything else is JSON (whose frames start with `{`).
    pub fn sniff(first_byte: u8) -> WireFormat {
        if first_byte == BINARY_MAGIC {
            WireFormat::Binary
        } else {
            WireFormat::Json
        }
    }

    /// Stable lower-case label (`"json"` / `"binary"`) used by stats and
    /// the Prometheus `codec` label.
    pub fn name(self) -> &'static str {
        match self {
            WireFormat::Json => "json",
            WireFormat::Binary => "binary",
        }
    }

    /// The codec implementation for this wire format.
    pub fn codec(self) -> &'static dyn Codec {
        match self {
            WireFormat::Json => &JsonCodec,
            WireFormat::Binary => &BinaryCodec,
        }
    }
}

impl fmt::Display for WireFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Default for WireFormat {
    /// JSON: what every pre-v4 peer speaks.
    fn default() -> Self {
        WireFormat::Json
    }
}

impl std::str::FromStr for WireFormat {
    type Err = String;

    /// Parse a `--wire` flag value: `json` or `binary`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "json" => Ok(WireFormat::Json),
            "binary" | "bin" => Ok(WireFormat::Binary),
            other => Err(format!("unknown wire format `{other}` (json|binary)")),
        }
    }
}

/// A `sim` request's stimulus, in either wire shape.
#[derive(Clone, Debug, PartialEq)]
pub enum StimPayload {
    /// `.stim` text (one MSB-first input line per cycle, `xN` repeats,
    /// `#` comments) — the only shape pre-v4 clients can send.
    Text(String),
    /// Pre-packed bit planes: feature `f` of cycle `c` is bit `c % 64` of
    /// word `f * W + c / 64` (`features` = primary inputs, `batch` =
    /// cycles). Ragged tail bits must be zero — both codecs mask them on
    /// encode and reject nonzero tails on decode, so the wire form is
    /// canonical and round-trips are identity.
    Packed(BitTensor),
}

impl From<&str> for StimPayload {
    fn from(text: &str) -> Self {
        StimPayload::Text(text.to_owned())
    }
}

impl From<String> for StimPayload {
    fn from(text: String) -> Self {
        StimPayload::Text(text)
    }
}

impl From<BitTensor> for StimPayload {
    fn from(planes: BitTensor) -> Self {
        StimPayload::Packed(planes)
    }
}

impl StimPayload {
    /// Number of stimulus cycles this payload describes, if that is
    /// knowable without parsing (packed payloads carry it explicitly).
    pub fn packed_cycles(&self) -> Option<usize> {
        match self {
            StimPayload::Text(_) => None,
            StimPayload::Packed(bt) => Some(bt.batch()),
        }
    }
}

/// A `sim` response's per-cycle primary outputs, in either wire shape.
#[derive(Clone, Debug, PartialEq)]
pub enum SimOutputs {
    /// One MSB-first output bit string per cycle (the pre-v4 shape).
    Text(Vec<String>),
    /// Packed bit planes, same layout rules as [`StimPayload::Packed`]
    /// (`features` = primary outputs, `batch` = cycles).
    Packed(BitTensor),
}

impl SimOutputs {
    /// Number of simulated cycles these outputs cover.
    pub fn cycles(&self) -> usize {
        match self {
            SimOutputs::Text(v) => v.len(),
            SimOutputs::Packed(bt) => bt.batch(),
        }
    }

    /// Per-cycle MSB-first output strings, converting packed planes if
    /// necessary (this is the client-side presentation path; servers never
    /// call it).
    pub fn to_strings(&self) -> Vec<String> {
        match self {
            SimOutputs::Text(v) => v.clone(),
            SimOutputs::Packed(bt) => planes_to_output_strings(bt),
        }
    }
}

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Load a compiled model document into the registry under `name`.
    Load {
        /// registry key for subsequent `sim` requests
        name: String,
        /// the full `c2nn-model` document as opaque bytes (UTF-8 JSON in
        /// practice; the binary codec carries it verbatim, the JSON codec
        /// frames it once as a raw subtree instead of re-escaping it as a
        /// string when the bytes are canonical single-line JSON)
        model: Vec<u8>,
        /// optional deadline, milliseconds from server receipt; past it the
        /// server replies `DeadlineExceeded` instead of doing the work
        deadline_ms: Option<u64>,
    },
    /// Run one testbench against model `model`.
    Sim {
        /// registry key of a previously loaded model
        model: String,
        /// the testbench, as `.stim` text or pre-packed bit planes
        stim: StimPayload,
        /// optional deadline, milliseconds from server receipt; lanes whose
        /// deadline passes before batch dispatch are shed with a typed
        /// `DeadlineExceeded` reply
        deadline_ms: Option<u64>,
    },
    /// Fetch per-model serving counters.
    Stats,
    /// Stop accepting connections and shut the server down.
    Shutdown,
}

/// Per-model serving counters reported by [`Response::Stats`].
#[derive(Clone, Debug, PartialEq)]
pub struct ModelStatsReport {
    /// registry key
    pub name: String,
    /// execution backend serving this model's batches (registry name,
    /// e.g. `pooled-csr`, `bitplane`)
    pub backend: String,
    /// whether the calibrated cost model picked the backend
    /// (`--backend auto`) rather than the operator naming it
    pub auto_selected: bool,
    /// model size in bytes (registry accounting)
    pub bytes: u64,
    /// total `sim` requests accepted for this model
    pub requests: u64,
    /// batched simulator runs executed
    pub batches: u64,
    /// total lanes across all batches (== requests that reached a batch)
    pub lanes: u64,
    /// `lanes / batches` — the coalescing win; 1.0 means no coalescing
    pub mean_occupancy: f64,
    /// requests currently queued or in flight
    pub queue_depth: u64,
    /// p50 request latency (enqueue → reply), microseconds (bucket upper
    /// bound)
    pub p50_us: u64,
    /// p99 request latency, microseconds (bucket upper bound)
    pub p99_us: u64,
    /// lanes shed with `DeadlineExceeded` before batch dispatch
    pub deadline_exceeded: u64,
}

c2nn_json::json_struct!(ModelStatsReport {
    name,
    backend,
    auto_selected,
    bytes,
    requests,
    batches,
    lanes,
    mean_occupancy,
    queue_depth,
    p50_us,
    p99_us,
    deadline_exceeded,
});

/// Per-backend selection rollup inside [`ServerStatsReport`]: how many
/// models each execution backend is serving, how many of those the cost
/// model chose, and the request volume they carried.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct BackendSelectionReport {
    /// backend registry name
    pub backend: String,
    /// models currently served on this backend
    pub models: u64,
    /// of those, models the cost model selected (`--backend auto`)
    pub auto_selected: u64,
    /// total `sim` requests accepted across those models
    pub requests: u64,
}

c2nn_json::json_struct!(BackendSelectionReport {
    backend,
    models,
    auto_selected,
    requests,
});

/// Server-wide overload/health counters reported by [`Response::Stats`]
/// beside the per-model reports.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ServerStatsReport {
    /// `sim` requests currently between admission and reply.
    pub inflight: u64,
    /// configured global in-flight budget
    pub max_inflight: u64,
    /// current pressure level: `"nominal"`, `"elevated"`, or `"saturated"`
    pub pressure: String,
    /// is the server draining (refusing all new work)?
    pub draining: bool,
    /// `sim` requests refused with `Overloaded`
    pub rejected_sims: u64,
    /// `load` requests refused with `Overloaded`
    pub rejected_loads: u64,
    /// requests refused with `ShuttingDown` during drain
    pub rejected_draining: u64,
    /// worker-pool epochs that lost a participant to a panic
    pub pool_poisoned_epochs: u64,
    /// chaos injections performed (0 unless `--chaos` armed a schedule)
    pub chaos_injected: u64,
    /// frames carried over the JSON wire (both directions) since start
    pub wire_json_frames: u64,
    /// frames carried over the binary wire (both directions) since start
    pub wire_binary_frames: u64,
    /// per-backend selection rollup over the currently served models
    pub backends: Vec<BackendSelectionReport>,
}

c2nn_json::json_struct!(ServerStatsReport {
    inflight,
    max_inflight,
    pressure,
    draining,
    rejected_sims,
    rejected_loads,
    rejected_draining,
    pool_poisoned_epochs,
    chaos_injected,
    wire_json_frames,
    wire_binary_frames,
    backends,
});

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`]; carries the protocol revision.
    Pong {
        /// [`PROTOCOL_VERSION`] of the server
        version: u32,
    },
    /// Model admitted to the registry.
    Loaded {
        /// registry key
        name: String,
        /// model size counted against the registry byte budget
        bytes: u64,
    },
    /// Testbench results, per-cycle primary outputs.
    SimResult {
        /// per-cycle primary outputs, as MSB-first strings or packed bit
        /// planes (servers answer in the shape the request arrived in)
        outputs: SimOutputs,
        /// cycles simulated (== `outputs.cycles()`)
        cycles: u64,
    },
    /// Reply to [`Request::Stats`].
    Stats {
        /// one report per registered model
        models: Vec<ModelStatsReport>,
        /// server-wide overload/health counters
        server: ServerStatsReport,
    },
    /// Server acknowledges [`Request::Shutdown`], or refuses a new request
    /// because it is draining. Either way: no new work, in-flight work
    /// completes, the connection closes cleanly.
    ShuttingDown,
    /// Admission control refused the request: the in-flight budget is
    /// exhausted (or, for `load`s, pressure is elevated). Retry after the
    /// hinted delay; the connection stays usable.
    Overloaded {
        /// suggested client backoff in milliseconds (always `1..=1000`)
        retry_after_ms: u64,
    },
    /// The request's `deadline_ms` passed before the server could do the
    /// work; the lane was shed without simulating. The connection stays
    /// usable.
    DeadlineExceeded,
    /// The request failed; the connection stays usable.
    Error {
        /// human-readable diagnostic
        message: String,
    },
}

/// Why a frame could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolError {
    /// What went wrong.
    pub message: String,
}

impl ProtocolError {
    fn new(message: impl Into<String>) -> Self {
        ProtocolError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.message)
    }
}

impl std::error::Error for ProtocolError {}

fn str_field(v: &Json, name: &str) -> Result<String, ProtocolError> {
    c2nn_json::field::<String>(v, name).map_err(|e| ProtocolError::new(e.to_string()))
}

// ---------------------------------------------------------------------------
// Bit-plane conversions
// ---------------------------------------------------------------------------

/// Pack `.stim` text into wire bit planes (`features` = primary inputs,
/// `batch` = cycles), inferring the input width from the first data line.
/// This is the client-side packing path for `--wire binary`.
pub fn stim_text_to_planes(text: &str) -> Result<BitTensor, ProtocolError> {
    let width = text
        .lines()
        .filter_map(|raw| {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                None
            } else {
                line.split_whitespace().next().map(str::len)
            }
        })
        .next()
        .ok_or_else(|| ProtocolError::new("stimulus has no data lines"))?;
    let stim = parse_stim(text, width).map_err(|e| ProtocolError::new(e.to_string()))?;
    Ok(stim_to_planes(&stim))
}

/// Pack a parsed stimulus into wire bit planes: feature `f` of cycle `c`
/// is `stim.cycles[c][f]` (input 0 is the LSB of each `.stim` line).
pub fn stim_to_planes(stim: &Stimulus) -> BitTensor {
    BitTensor::from_lanes(&stim.cycles)
}

/// Unpack wire bit planes into the scheduler's per-cycle lane vectors
/// (the inverse of [`stim_to_planes`]).
pub fn planes_to_stim(planes: &BitTensor) -> Stimulus {
    Stimulus {
        cycles: planes.to_lanes(),
    }
}

/// Render packed output planes as per-cycle MSB-first bit strings — the
/// same reading order as the `.stim` input format (output 0, the LSB,
/// is the last character).
pub fn planes_to_output_strings(planes: &BitTensor) -> Vec<String> {
    (0..planes.batch())
        .map(|c| {
            (0..planes.features())
                .rev()
                .map(|f| if planes.get_bit(f, c) { '1' } else { '0' })
                .collect()
        })
        .collect()
}

/// Validate decoded planes: word count must match the declared shape and
/// ragged tail bits must be zero (the canonical wire form, so
/// encode/decode round-trips are identity).
fn planes_from_words(
    features: usize,
    cycles: usize,
    data: Vec<u64>,
) -> Result<BitTensor, ProtocolError> {
    let bt = BitTensor::from_words(features, cycles, data).ok_or_else(|| {
        ProtocolError::new("bit-plane word count does not match features x ceil(cycles/64)")
    })?;
    let w = bt.words_per_feature();
    let tail = bt.tail_mask();
    if w > 0 && tail != !0 {
        for f in 0..bt.features() {
            if bt.feature_words(f)[w - 1] & !tail != 0 {
                return Err(ProtocolError::new("nonzero bits in ragged bit-plane tail"));
            }
        }
    }
    Ok(bt)
}

/// Iterate a tensor's words in wire order with the ragged tail of each
/// plane masked to zero (encoders call this so the wire form is always
/// canonical).
fn wire_words(bt: &BitTensor) -> impl Iterator<Item = u64> + '_ {
    let w = bt.words_per_feature();
    let tail = bt.tail_mask();
    bt.data().iter().enumerate().map(move |(i, &word)| {
        if w > 0 && (i + 1) % w == 0 {
            word & tail
        } else {
            word
        }
    })
}

// ---------------------------------------------------------------------------
// JSON encoding
// ---------------------------------------------------------------------------

/// Packed planes as a JSON object: `{"features":F,"cycles":C,"words":[hex]}`
/// (words are lower-case hex strings because JSON numbers are f64-lossy
/// above 2^53).
fn planes_to_json(bt: &BitTensor) -> Json {
    Json::Obj(vec![
        ("features".into(), (bt.features() as u64).to_json()),
        ("cycles".into(), (bt.batch() as u64).to_json()),
        (
            "words".into(),
            Json::Arr(
                wire_words(bt)
                    .map(|w| Json::Str(format!("{w:x}")))
                    .collect(),
            ),
        ),
    ])
}

fn planes_from_json(v: &Json) -> Result<BitTensor, ProtocolError> {
    let field_err = |e: c2nn_json::DecodeError| ProtocolError::new(e.to_string());
    let features: u64 = c2nn_json::field(v, "features").map_err(field_err)?;
    let cycles: u64 = c2nn_json::field(v, "cycles").map_err(field_err)?;
    let words: Vec<String> = c2nn_json::field(v, "words").map_err(field_err)?;
    let data = words
        .iter()
        .map(|s| {
            u64::from_str_radix(s, 16)
                .map_err(|_| ProtocolError::new(format!("bad bit-plane word `{s}`")))
        })
        .collect::<Result<Vec<u64>, _>>()?;
    planes_from_words(features as usize, cycles as usize, data)
}

/// If `model` is canonical single-line JSON (compact re-serialization is
/// byte-identical), return the parsed document so the `load` frame can
/// embed it as a raw subtree instead of re-escaping it as a string.
fn canonical_model_doc(model: &[u8]) -> Option<Json> {
    let text = std::str::from_utf8(model).ok()?;
    let doc = c2nn_json::parse(text).ok()?;
    if doc.to_string_compact() == text {
        Some(doc)
    } else {
        None
    }
}

impl Request {
    /// Serialize to a single-line JSON frame body (no trailing newline).
    pub fn encode(&self) -> String {
        let v = match self {
            Request::Ping => Json::Obj(vec![("op".into(), "ping".to_json())]),
            Request::Load {
                name,
                model,
                deadline_ms,
            } => {
                let mut fields = vec![
                    ("op".into(), "load".to_json()),
                    ("name".into(), name.to_json()),
                ];
                // frame the model document once (raw subtree) when we can;
                // fall back to the pre-v4 escaped-string field otherwise
                match canonical_model_doc(model) {
                    Some(doc) => fields.push(("model".into(), doc)),
                    None => fields.push((
                        "model_json".into(),
                        String::from_utf8_lossy(model).into_owned().to_json(),
                    )),
                }
                if let Some(d) = deadline_ms {
                    fields.push(("deadline_ms".into(), d.to_json()));
                }
                Json::Obj(fields)
            }
            Request::Sim {
                model,
                stim,
                deadline_ms,
            } => {
                let mut fields = vec![
                    ("op".into(), "sim".to_json()),
                    ("model".into(), model.to_json()),
                ];
                match stim {
                    StimPayload::Text(t) => fields.push(("stim".into(), t.to_json())),
                    StimPayload::Packed(bt) => {
                        fields.push(("stim_packed".into(), planes_to_json(bt)))
                    }
                }
                if let Some(d) = deadline_ms {
                    fields.push(("deadline_ms".into(), d.to_json()));
                }
                Json::Obj(fields)
            }
            Request::Stats => Json::Obj(vec![("op".into(), "stats".to_json())]),
            Request::Shutdown => Json::Obj(vec![("op".into(), "shutdown".to_json())]),
        };
        v.to_string_compact()
    }

    /// Decode a JSON frame body. Never panics.
    pub fn decode(text: &str) -> Result<Request, ProtocolError> {
        let v = c2nn_json::parse(text).map_err(|e| ProtocolError::new(e.to_string()))?;
        let field_err = |e: c2nn_json::DecodeError| ProtocolError::new(e.to_string());
        let op = str_field(&v, "op")?;
        match op.as_str() {
            "ping" => Ok(Request::Ping),
            "load" => {
                let model = match v.get("model") {
                    // v4 once-framed document: re-serialize the subtree
                    Some(doc) => doc.to_string_compact().into_bytes(),
                    None => str_field(&v, "model_json")?.into_bytes(),
                };
                Ok(Request::Load {
                    name: str_field(&v, "name")?,
                    model,
                    deadline_ms: c2nn_json::opt_field(&v, "deadline_ms").map_err(field_err)?,
                })
            }
            "sim" => {
                let stim = match v.get("stim_packed") {
                    Some(p) => StimPayload::Packed(planes_from_json(p)?),
                    None => StimPayload::Text(str_field(&v, "stim")?),
                };
                Ok(Request::Sim {
                    model: str_field(&v, "model")?,
                    stim,
                    deadline_ms: c2nn_json::opt_field(&v, "deadline_ms").map_err(field_err)?,
                })
            }
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtocolError::new(format!("unknown op `{other}`"))),
        }
    }
}

impl Response {
    /// Serialize to a single-line JSON frame body (no trailing newline).
    pub fn encode(&self) -> String {
        let v = match self {
            Response::Pong { version } => Json::Obj(vec![
                ("ok".into(), true.to_json()),
                ("op".into(), "pong".to_json()),
                ("version".into(), version.to_json()),
            ]),
            Response::Loaded { name, bytes } => Json::Obj(vec![
                ("ok".into(), true.to_json()),
                ("op".into(), "loaded".to_json()),
                ("name".into(), name.to_json()),
                ("bytes".into(), bytes.to_json()),
            ]),
            Response::SimResult { outputs, cycles } => {
                let mut fields = vec![
                    ("ok".into(), true.to_json()),
                    ("op".into(), "sim".to_json()),
                ];
                match outputs {
                    SimOutputs::Text(v) => fields.push(("outputs".into(), v.to_json())),
                    SimOutputs::Packed(bt) => {
                        fields.push(("outputs_packed".into(), planes_to_json(bt)))
                    }
                }
                fields.push(("cycles".into(), cycles.to_json()));
                Json::Obj(fields)
            }
            Response::Stats { models, server } => Json::Obj(vec![
                ("ok".into(), true.to_json()),
                ("op".into(), "stats".to_json()),
                ("models".into(), models.to_json()),
                ("server".into(), server.to_json()),
            ]),
            Response::ShuttingDown => Json::Obj(vec![
                ("ok".into(), true.to_json()),
                ("op".into(), "shutdown".to_json()),
            ]),
            Response::Overloaded { retry_after_ms } => Json::Obj(vec![
                ("ok".into(), false.to_json()),
                ("kind".into(), "overloaded".to_json()),
                ("retry_after_ms".into(), retry_after_ms.to_json()),
            ]),
            Response::DeadlineExceeded => Json::Obj(vec![
                ("ok".into(), false.to_json()),
                ("kind".into(), "deadline_exceeded".to_json()),
            ]),
            Response::Error { message } => Json::Obj(vec![
                ("ok".into(), false.to_json()),
                ("error".into(), message.to_json()),
            ]),
        };
        v.to_string_compact()
    }

    /// Decode a JSON frame body. Never panics.
    pub fn decode(text: &str) -> Result<Response, ProtocolError> {
        let v = c2nn_json::parse(text).map_err(|e| ProtocolError::new(e.to_string()))?;
        let ok = v
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| ProtocolError::new("missing `ok` field"))?;
        let field_err = |e: c2nn_json::DecodeError| ProtocolError::new(e.to_string());
        if !ok {
            // typed rejections carry a `kind`; untyped failures an `error`
            return match c2nn_json::opt_field::<String>(&v, "kind")
                .map_err(field_err)?
                .as_deref()
            {
                Some("overloaded") => Ok(Response::Overloaded {
                    retry_after_ms: c2nn_json::field(&v, "retry_after_ms").map_err(field_err)?,
                }),
                Some("deadline_exceeded") => Ok(Response::DeadlineExceeded),
                Some(other) => Err(ProtocolError::new(format!(
                    "unknown failure kind `{other}`"
                ))),
                None => Ok(Response::Error {
                    message: str_field(&v, "error")?,
                }),
            };
        }
        let op = str_field(&v, "op")?;
        match op.as_str() {
            "pong" => Ok(Response::Pong {
                version: c2nn_json::field(&v, "version").map_err(field_err)?,
            }),
            "loaded" => Ok(Response::Loaded {
                name: str_field(&v, "name")?,
                bytes: c2nn_json::field(&v, "bytes").map_err(field_err)?,
            }),
            "sim" => {
                let outputs = match v.get("outputs_packed") {
                    Some(p) => SimOutputs::Packed(planes_from_json(p)?),
                    None => SimOutputs::Text(c2nn_json::field(&v, "outputs").map_err(field_err)?),
                };
                Ok(Response::SimResult {
                    outputs,
                    cycles: c2nn_json::field(&v, "cycles").map_err(field_err)?,
                })
            }
            "stats" => Ok(Response::Stats {
                models: c2nn_json::field(&v, "models").map_err(field_err)?,
                // absent from pre-v2 servers → defaults, so old captures decode
                server: c2nn_json::opt_field(&v, "server")
                    .map_err(field_err)?
                    .unwrap_or_default(),
            }),
            "shutdown" => Ok(Response::ShuttingDown),
            other => Err(ProtocolError::new(format!("unknown response op `{other}`"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Binary encoding
// ---------------------------------------------------------------------------

// Request kinds (high bit clear) and response kinds (high bit set).
const K_PING: u8 = 0x01;
const K_LOAD: u8 = 0x02;
const K_SIM: u8 = 0x03;
const K_STATS: u8 = 0x04;
const K_SHUTDOWN: u8 = 0x05;
const K_PONG: u8 = 0x81;
const K_LOADED: u8 = 0x82;
const K_SIM_RESULT: u8 = 0x83;
const K_STATS_REPLY: u8 = 0x84;
const K_SHUTTING_DOWN: u8 = 0x85;
const K_OVERLOADED: u8 = 0x86;
const K_DEADLINE_EXCEEDED: u8 = 0x87;
const K_ERROR: u8 = 0x88;

// Stimulus/result payload forms inside K_SIM / K_SIM_RESULT.
const FORM_TEXT: u8 = 0;
const FORM_PACKED: u8 = 1;

/// Assemble a complete binary frame: header + payload.
fn binary_frame(kind: u8, payload: Vec<u8>) -> Vec<u8> {
    debug_assert!(payload.len() <= u32::MAX as usize, "payload too large");
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.push(BINARY_MAGIC);
    out.push(BINARY_WIRE_VERSION);
    out.push(kind);
    out.push(0); // flags, reserved
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_bytes(out: &mut Vec<u8>, b: &[u8]) {
    push_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn push_deadline(out: &mut Vec<u8>, d: &Option<u64>) {
    match d {
        Some(ms) => {
            out.push(1);
            push_u64(out, *ms);
        }
        None => {
            out.push(0);
            push_u64(out, 0);
        }
    }
}

fn push_planes(out: &mut Vec<u8>, bt: &BitTensor) {
    push_u32(out, bt.features() as u32);
    push_u32(out, bt.batch() as u32);
    out.reserve(bt.data().len() * 8);
    for w in wire_words(bt) {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Bounds-checked cursor over an untrusted binary payload. Every read
/// checks the remaining length before touching the slice, so a hostile
/// length field can never cause a panic or an oversized allocation.
struct Cur<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Self {
        Cur { b, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.remaining() < n {
            return Err(ProtocolError::new("truncated binary payload"));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<&'a [u8], ProtocolError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        std::str::from_utf8(self.bytes()?)
            .map(str::to_owned)
            .map_err(|_| ProtocolError::new("binary payload string is not valid UTF-8"))
    }

    fn utf8_rest(&mut self) -> Result<&'a str, ProtocolError> {
        let rest = self.take(self.remaining())?;
        std::str::from_utf8(rest)
            .map_err(|_| ProtocolError::new("binary payload string is not valid UTF-8"))
    }

    fn deadline(&mut self) -> Result<Option<u64>, ProtocolError> {
        let present = self.u8()?;
        let ms = self.u64()?;
        match present {
            0 => Ok(None),
            1 => Ok(Some(ms)),
            _ => Err(ProtocolError::new("bad deadline presence flag")),
        }
    }

    fn planes(&mut self) -> Result<BitTensor, ProtocolError> {
        let features = self.u32()? as usize;
        let cycles = self.u32()? as usize;
        let words = features * cycles.div_ceil(64);
        let needed = words
            .checked_mul(8)
            .ok_or_else(|| ProtocolError::new("bit-plane shape overflows"))?;
        if self.remaining() != needed {
            return Err(ProtocolError::new(
                "bit-plane payload length does not match declared shape",
            ));
        }
        let raw = self.take(needed)?;
        let data = raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        planes_from_words(features, cycles, data)
    }

    fn done(&self) -> Result<(), ProtocolError> {
        if self.remaining() != 0 {
            return Err(ProtocolError::new("trailing garbage in binary payload"));
        }
        Ok(())
    }
}

/// Validate a binary frame's header and return `(kind, payload)`. The
/// framing layer already checked magic/version/length, but decode is also
/// reachable with raw frame bytes (tests, captures), so re-validate.
fn split_binary_frame(frame: &[u8]) -> Result<(u8, &[u8]), ProtocolError> {
    if frame.len() < HEADER_LEN {
        return Err(ProtocolError::new("binary frame shorter than its header"));
    }
    if frame[0] != BINARY_MAGIC {
        return Err(ProtocolError::new("bad binary frame magic"));
    }
    if frame[1] != BINARY_WIRE_VERSION {
        return Err(ProtocolError::new(format!(
            "unsupported binary wire version {}",
            frame[1]
        )));
    }
    if frame[3] != 0 {
        return Err(ProtocolError::new("nonzero reserved flags in binary frame"));
    }
    let len = u32::from_le_bytes(frame[4..8].try_into().unwrap()) as usize;
    if frame.len() != HEADER_LEN + len {
        return Err(ProtocolError::new(
            "binary frame length does not match its header",
        ));
    }
    Ok((frame[2], &frame[HEADER_LEN..]))
}

fn encode_request_binary(req: &Request) -> Vec<u8> {
    match req {
        Request::Ping => binary_frame(K_PING, Vec::new()),
        Request::Load {
            name,
            model,
            deadline_ms,
        } => {
            let mut p = Vec::with_capacity(name.len() + model.len() + 16);
            push_bytes(&mut p, name.as_bytes());
            push_deadline(&mut p, deadline_ms);
            p.extend_from_slice(model);
            binary_frame(K_LOAD, p)
        }
        Request::Sim {
            model,
            stim,
            deadline_ms,
        } => {
            let mut p = Vec::new();
            push_bytes(&mut p, model.as_bytes());
            push_deadline(&mut p, deadline_ms);
            match stim {
                StimPayload::Text(t) => {
                    p.push(FORM_TEXT);
                    p.extend_from_slice(t.as_bytes());
                }
                StimPayload::Packed(bt) => {
                    p.push(FORM_PACKED);
                    push_planes(&mut p, bt);
                }
            }
            binary_frame(K_SIM, p)
        }
        Request::Stats => binary_frame(K_STATS, Vec::new()),
        Request::Shutdown => binary_frame(K_SHUTDOWN, Vec::new()),
    }
}

fn decode_request_binary(frame: &[u8]) -> Result<Request, ProtocolError> {
    let (kind, payload) = split_binary_frame(frame)?;
    let mut c = Cur::new(payload);
    match kind {
        K_PING => {
            c.done()?;
            Ok(Request::Ping)
        }
        K_LOAD => {
            let name = c.string()?;
            let deadline_ms = c.deadline()?;
            let model = c.take(c.remaining())?.to_vec();
            Ok(Request::Load {
                name,
                model,
                deadline_ms,
            })
        }
        K_SIM => {
            let model = c.string()?;
            let deadline_ms = c.deadline()?;
            let stim = match c.u8()? {
                FORM_TEXT => StimPayload::Text(c.utf8_rest()?.to_owned()),
                FORM_PACKED => StimPayload::Packed(c.planes()?),
                other => return Err(ProtocolError::new(format!("unknown stimulus form {other}"))),
            };
            Ok(Request::Sim {
                model,
                stim,
                deadline_ms,
            })
        }
        K_STATS => {
            c.done()?;
            Ok(Request::Stats)
        }
        K_SHUTDOWN => {
            c.done()?;
            Ok(Request::Shutdown)
        }
        other => Err(ProtocolError::new(format!(
            "unknown binary request kind 0x{other:02x}"
        ))),
    }
}

fn encode_response_binary(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Pong { version } => {
            let mut p = Vec::with_capacity(4);
            push_u32(&mut p, *version);
            binary_frame(K_PONG, p)
        }
        Response::Loaded { name, bytes } => {
            let mut p = Vec::with_capacity(name.len() + 12);
            push_bytes(&mut p, name.as_bytes());
            push_u64(&mut p, *bytes);
            binary_frame(K_LOADED, p)
        }
        Response::SimResult { outputs, cycles } => {
            let mut p = Vec::new();
            push_u64(&mut p, *cycles);
            match outputs {
                SimOutputs::Text(strings) => {
                    p.push(FORM_TEXT);
                    push_u32(&mut p, strings.len() as u32);
                    for s in strings {
                        push_bytes(&mut p, s.as_bytes());
                    }
                }
                SimOutputs::Packed(bt) => {
                    p.push(FORM_PACKED);
                    push_planes(&mut p, bt);
                }
            }
            binary_frame(K_SIM_RESULT, p)
        }
        Response::Stats { models, server } => {
            // stats are a cold diagnostic path: the payload is the JSON
            // stats object, so the report schema lives in one place
            let doc = Json::Obj(vec![
                ("models".into(), models.to_json()),
                ("server".into(), server.to_json()),
            ]);
            binary_frame(K_STATS_REPLY, doc.to_string_compact().into_bytes())
        }
        Response::ShuttingDown => binary_frame(K_SHUTTING_DOWN, Vec::new()),
        Response::Overloaded { retry_after_ms } => {
            let mut p = Vec::with_capacity(8);
            push_u64(&mut p, *retry_after_ms);
            binary_frame(K_OVERLOADED, p)
        }
        Response::DeadlineExceeded => binary_frame(K_DEADLINE_EXCEEDED, Vec::new()),
        Response::Error { message } => binary_frame(K_ERROR, message.as_bytes().to_vec()),
    }
}

fn decode_response_binary(frame: &[u8]) -> Result<Response, ProtocolError> {
    let (kind, payload) = split_binary_frame(frame)?;
    let mut c = Cur::new(payload);
    let field_err = |e: c2nn_json::DecodeError| ProtocolError::new(e.to_string());
    match kind {
        K_PONG => {
            let version = c.u32()?;
            c.done()?;
            Ok(Response::Pong { version })
        }
        K_LOADED => {
            let name = c.string()?;
            let bytes = c.u64()?;
            c.done()?;
            Ok(Response::Loaded { name, bytes })
        }
        K_SIM_RESULT => {
            let cycles = c.u64()?;
            let outputs = match c.u8()? {
                FORM_TEXT => {
                    let count = c.u32()? as usize;
                    let mut strings = Vec::new();
                    for _ in 0..count {
                        strings.push(c.string()?);
                    }
                    c.done()?;
                    SimOutputs::Text(strings)
                }
                FORM_PACKED => SimOutputs::Packed(c.planes()?),
                other => return Err(ProtocolError::new(format!("unknown output form {other}"))),
            };
            Ok(Response::SimResult { outputs, cycles })
        }
        K_STATS_REPLY => {
            let text = c.utf8_rest()?;
            let v = c2nn_json::parse(text).map_err(|e| ProtocolError::new(e.to_string()))?;
            Ok(Response::Stats {
                models: c2nn_json::field(&v, "models").map_err(field_err)?,
                server: c2nn_json::opt_field(&v, "server")
                    .map_err(field_err)?
                    .unwrap_or_default(),
            })
        }
        K_SHUTTING_DOWN => {
            c.done()?;
            Ok(Response::ShuttingDown)
        }
        K_OVERLOADED => {
            let retry_after_ms = c.u64()?;
            c.done()?;
            Ok(Response::Overloaded { retry_after_ms })
        }
        K_DEADLINE_EXCEEDED => {
            c.done()?;
            Ok(Response::DeadlineExceeded)
        }
        K_ERROR => Ok(Response::Error {
            message: c.utf8_rest()?.to_owned(),
        }),
        other => Err(ProtocolError::new(format!(
            "unknown binary response kind 0x{other:02x}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// The codec layer
// ---------------------------------------------------------------------------

/// One wire format: encodes messages into complete frames (terminator /
/// header included) and decodes the frame bytes [`FrameBuffer`] pops.
/// Implementations are stateless unit structs; get one from
/// [`WireFormat::codec`].
pub trait Codec: Send + Sync {
    /// Stable label (`"json"` / `"binary"`), used by stats and metrics.
    fn name(&self) -> &'static str;
    /// The wire format this codec speaks.
    fn wire(&self) -> WireFormat;
    /// Encode a request into one complete frame, ready to write.
    fn encode_request(&self, req: &Request) -> Vec<u8>;
    /// Encode a response into one complete frame, ready to write.
    fn encode_response(&self, resp: &Response) -> Vec<u8>;
    /// Decode a popped frame as a request. Never panics.
    fn decode_request(&self, frame: &[u8]) -> Result<Request, ProtocolError>;
    /// Decode a popped frame as a response. Never panics.
    fn decode_response(&self, frame: &[u8]) -> Result<Response, ProtocolError>;
}

/// The newline-delimited JSON codec (protocol v1+).
pub struct JsonCodec;

fn frame_utf8(frame: &[u8]) -> Result<&str, ProtocolError> {
    std::str::from_utf8(frame).map_err(|_| ProtocolError::new("frame is not valid UTF-8"))
}

impl Codec for JsonCodec {
    fn name(&self) -> &'static str {
        WireFormat::Json.name()
    }

    fn wire(&self) -> WireFormat {
        WireFormat::Json
    }

    fn encode_request(&self, req: &Request) -> Vec<u8> {
        let mut out = req.encode().into_bytes();
        out.push(b'\n');
        out
    }

    fn encode_response(&self, resp: &Response) -> Vec<u8> {
        let mut out = resp.encode().into_bytes();
        out.push(b'\n');
        out
    }

    fn decode_request(&self, frame: &[u8]) -> Result<Request, ProtocolError> {
        Request::decode(frame_utf8(frame)?)
    }

    fn decode_response(&self, frame: &[u8]) -> Result<Response, ProtocolError> {
        Response::decode(frame_utf8(frame)?)
    }
}

/// The length-prefixed binary codec (protocol v4+).
pub struct BinaryCodec;

impl Codec for BinaryCodec {
    fn name(&self) -> &'static str {
        WireFormat::Binary.name()
    }

    fn wire(&self) -> WireFormat {
        WireFormat::Binary
    }

    fn encode_request(&self, req: &Request) -> Vec<u8> {
        encode_request_binary(req)
    }

    fn encode_response(&self, resp: &Response) -> Vec<u8> {
        encode_response_binary(resp)
    }

    fn decode_request(&self, frame: &[u8]) -> Result<Request, ProtocolError> {
        decode_request_binary(frame)
    }

    fn decode_response(&self, frame: &[u8]) -> Result<Response, ProtocolError> {
        decode_response_binary(frame)
    }
}

/// One complete frame popped off a stream: the sniffed wire format plus
/// the frame bytes (for JSON, the line body without its newline; for
/// binary, the whole frame including the 8-byte header).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Codec this frame arrived in (by first-byte sniff).
    pub wire: WireFormat,
    /// The frame bytes (see type-level docs for what they include).
    pub bytes: Vec<u8>,
}

impl Frame {
    /// Decode as a client-to-server message with this frame's codec.
    pub fn decode_request(&self) -> Result<Request, ProtocolError> {
        self.wire.codec().decode_request(&self.bytes)
    }

    /// Decode as a server-to-client message with this frame's codec.
    pub fn decode_response(&self) -> Result<Response, ProtocolError> {
        self.wire.codec().decode_response(&self.bytes)
    }

    /// Frame length in bytes as popped (wire bytes minus the JSON
    /// newline terminator).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Is the frame empty? (Only possible for a bare JSON newline.)
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Write one JSON frame (body + `\n`) and flush.
pub fn write_frame<W: Write>(w: &mut W, body: &str) -> io::Result<()> {
    debug_assert!(!body.contains('\n'), "frame body must be a single line");
    w.write_all(body.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Write one pre-encoded frame (as produced by a [`Codec`]) and flush.
pub fn write_wire_frame<W: Write>(w: &mut W, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

/// Push-based incremental frame splitter: the event loop's per-connection
/// read buffer. Bytes go in via [`push`](FrameBuffer::push) as the socket
/// yields them; complete frames come out via
/// [`next_frame`](FrameBuffer::next_frame), codec-sniffed per frame from
/// the first buffered byte. [`FrameReader`] wraps the same buffer behind a
/// pull-style `Read` source, so the framing rules (length bound, newline
/// scan, binary header parse) live in exactly one place.
#[derive(Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    // bytes before this offset are known newline-free, so each push only
    // costs a scan of fresh bytes (a 64 MiB frame arriving in 8 KiB reads
    // must not cost a quadratic re-scan); only meaningful on the JSON path
    scanned: usize,
    limits: FrameLimits,
}

impl FrameBuffer {
    /// An empty buffer with default [`FrameLimits`].
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// An empty buffer enforcing the given limits.
    pub fn with_limits(limits: FrameLimits) -> Self {
        FrameBuffer {
            limits,
            ..FrameBuffer::default()
        }
    }

    /// Append bytes read from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (complete frames not yet popped plus any
    /// partial frame). The server's drain path uses this to tell "client
    /// mid-send, wait for their frame" from "line is idle, close now".
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Is nothing buffered at all?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// First buffered bytes without consuming them (the event loop sniffs
    /// `GET ` here to tell an HTTP metrics scrape from a protocol frame).
    pub fn peek(&self) -> &[u8] {
        &self.buf
    }

    /// Wire format of the frame at the head of the buffer, if any byte is
    /// buffered.
    pub fn sniff_wire(&self) -> Option<WireFormat> {
        self.buf.first().map(|&b| WireFormat::sniff(b))
    }

    /// Is a complete frame (or an unrecoverable framing defect, which is
    /// equally actionable) buffered? Unlike
    /// [`next_frame`](FrameBuffer::next_frame) this never consumes; the
    /// drain path uses it to decide whether a closing connection still has
    /// a request to answer.
    pub fn has_complete_frame(&self) -> bool {
        match self.buf.first() {
            None => false,
            Some(&BINARY_MAGIC) => {
                if self.buf.len() < HEADER_LEN {
                    return false;
                }
                if self.buf[1] != BINARY_WIRE_VERSION {
                    return true; // framing defect: next_frame will error
                }
                let len = u32::from_le_bytes(self.buf[4..8].try_into().unwrap()) as usize;
                len > self.limits.max_frame || self.buf.len() >= HEADER_LEN + len
            }
            Some(_) => self.buf.contains(&b'\n'),
        }
    }

    /// Pop the next complete frame.
    ///
    /// * `Ok(Some(frame))` — one complete frame, wire-sniffed;
    /// * `Ok(None)` — no complete frame buffered yet;
    /// * `Err(InvalidData)` — the partial frame already exceeds
    ///   [`FrameLimits::max_frame`], or a binary header declares an
    ///   unsupported version or an oversize length; the buffer is cleared
    ///   because framing is no longer trustworthy.
    pub fn next_frame(&mut self) -> io::Result<Option<Frame>> {
        if self.buf.first() == Some(&BINARY_MAGIC) {
            return self.next_binary_frame();
        }
        if let Some(off) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
            let pos = self.scanned + off;
            let mut frame: Vec<u8> = self.buf.drain(..=pos).collect();
            frame.pop(); // the newline
            self.scanned = 0;
            return Ok(Some(Frame {
                wire: WireFormat::Json,
                bytes: frame,
            }));
        }
        self.scanned = self.buf.len();
        if self.buf.len() > self.limits.max_frame {
            self.poison();
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame exceeds {} bytes", self.limits.max_frame),
            ));
        }
        Ok(None)
    }

    fn next_binary_frame(&mut self) -> io::Result<Option<Frame>> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        if self.buf[1] != BINARY_WIRE_VERSION {
            let got = self.buf[1];
            self.poison();
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported binary wire version {got}"),
            ));
        }
        let len = u32::from_le_bytes(self.buf[4..8].try_into().unwrap()) as usize;
        if len > self.limits.max_frame {
            self.poison();
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "binary frame of {len} bytes exceeds {} bytes",
                    self.limits.max_frame
                ),
            ));
        }
        if self.buf.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let bytes: Vec<u8> = self.buf.drain(..HEADER_LEN + len).collect();
        self.scanned = 0;
        Ok(Some(Frame {
            wire: WireFormat::Binary,
            bytes,
        }))
    }

    fn poison(&mut self) {
        self.buf.clear();
        self.scanned = 0;
    }

    /// Drop everything buffered.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.scanned = 0;
    }
}

/// Incremental frame reader over any byte stream.
///
/// Unlike `BufRead::read_line`, a read timeout (`WouldBlock` /`TimedOut`)
/// surfaces as an error *without losing buffered partial data* — the server
/// uses short read timeouts to poll its shutdown flag, then resumes reading
/// the same frame.
pub struct FrameReader<R> {
    inner: R,
    frames: FrameBuffer,
}

impl<R: Read> FrameReader<R> {
    /// Wrap a byte stream with default [`FrameLimits`].
    pub fn new(inner: R) -> Self {
        FrameReader {
            inner,
            frames: FrameBuffer::new(),
        }
    }

    /// Wrap a byte stream enforcing the given limits.
    pub fn with_limits(inner: R, limits: FrameLimits) -> Self {
        FrameReader {
            inner,
            frames: FrameBuffer::with_limits(limits),
        }
    }

    /// The underlying stream.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Bytes of an incomplete frame currently buffered. The server's drain
    /// path uses this to tell "client mid-send, wait for their frame" from
    /// "line is idle, close now".
    pub fn buffered(&self) -> usize {
        self.frames.buffered()
    }

    /// Read the next complete frame.
    ///
    /// * `Ok(Some(frame))` — one complete frame, wire-sniffed;
    /// * `Ok(None)` — clean end of stream (no partial frame pending);
    /// * `Err(e)` with `WouldBlock`/`TimedOut` — no complete frame *yet*;
    ///   call again, buffered bytes are kept;
    /// * other `Err` — stream error, over-long frame
    ///   ([`FrameLimits::max_frame`]), or a stream that ended mid-frame.
    pub fn read_frame(&mut self) -> io::Result<Option<Frame>> {
        loop {
            if let Some(frame) = self.frames.next_frame()? {
                return Ok(Some(frame));
            }
            let mut chunk = [0u8; 8192];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    if self.frames.is_empty() {
                        return Ok(None);
                    }
                    self.frames.clear();
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "stream ended mid-frame",
                    ));
                }
                Ok(n) => self.frames.push(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_split_across_reads() {
        /// Yields one byte per read call.
        struct Trickle(Cursor<Vec<u8>>);
        impl Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                let take = 1.min(buf.len());
                self.0.read(&mut buf[..take])
            }
        }
        let mut r = FrameReader::new(Trickle(Cursor::new(b"abc\ndef\n".to_vec())));
        assert_eq!(r.read_frame().unwrap().unwrap().bytes, b"abc".to_vec());
        assert_eq!(r.read_frame().unwrap().unwrap().bytes, b"def".to_vec());
        assert!(r.read_frame().unwrap().is_none());
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let mut r = FrameReader::new(Cursor::new(b"partial".to_vec()));
        assert!(r.read_frame().is_err());
    }

    #[test]
    fn encoded_frames_are_single_lines() {
        let req = Request::Sim {
            model: "with\nnewline".into(),
            stim: StimPayload::Text("10\n01 x3\n# comment\n".into()),
            deadline_ms: Some(250),
        };
        let body = req.encode();
        assert!(!body.contains('\n'), "{body}");
        assert_eq!(Request::decode(&body).unwrap(), req);
    }

    #[test]
    fn deadline_field_is_optional_on_the_wire() {
        // a pre-v2 client frame without deadline_ms still decodes
        let body = r#"{"op":"sim","model":"m","stim":"1\n"}"#;
        assert_eq!(
            Request::decode(body).unwrap(),
            Request::Sim {
                model: "m".into(),
                stim: StimPayload::Text("1\n".into()),
                deadline_ms: None
            }
        );
    }

    #[test]
    fn typed_rejections_roundtrip() {
        for resp in [
            Response::Overloaded { retry_after_ms: 7 },
            Response::DeadlineExceeded,
            Response::ShuttingDown,
        ] {
            let body = resp.encode();
            assert!(!body.contains('\n'));
            assert_eq!(Response::decode(&body).unwrap(), resp);
            // and identically under the binary codec
            let frame = BinaryCodec.encode_response(&resp);
            assert_eq!(BinaryCodec.decode_response(&frame).unwrap(), resp);
        }
        // unknown failure kinds are a protocol error, not a silent Error{}
        assert!(Response::decode(r#"{"ok":false,"kind":"meteor_strike"}"#).is_err());
    }

    #[test]
    fn pre_v2_stats_without_server_block_decodes() {
        let body = r#"{"ok":true,"op":"stats","models":[]}"#;
        match Response::decode(body).unwrap() {
            Response::Stats { models, server } => {
                assert!(models.is_empty());
                assert_eq!(server, ServerStatsReport::default());
            }
            other => panic!("wanted stats, got {other:?}"),
        }
    }

    #[test]
    fn pre_v4_load_with_escaped_model_string_decodes() {
        let body = r#"{"op":"load","name":"m","model_json":"{\"a\":1}"}"#;
        assert_eq!(
            Request::decode(body).unwrap(),
            Request::Load {
                name: "m".into(),
                model: br#"{"a":1}"#.to_vec(),
                deadline_ms: None,
            }
        );
    }

    #[test]
    fn canonical_model_is_framed_once_not_re_escaped() {
        let model = br#"{"format":"c2nn-model","layers":[1,2,3]}"#.to_vec();
        let req = Request::Load {
            name: "m".into(),
            model: model.clone(),
            deadline_ms: None,
        };
        let body = req.encode();
        // the document rides as a raw subtree: no escaped quotes
        assert!(body.contains(r#""model":{"format":"c2nn-model""#), "{body}");
        assert!(!body.contains(r#"\""#), "{body}");
        assert_eq!(Request::decode(&body).unwrap(), req);
    }

    #[test]
    fn binary_frames_roundtrip_every_request_variant() {
        let packed = BitTensor::from_lanes(&[
            vec![true, false, true],
            vec![false, false, true],
            vec![true, true, false],
        ]);
        let reqs = [
            Request::Ping,
            Request::Load {
                name: "m".into(),
                model: vec![0, 159, 146, 150, 255], // non-UTF-8 bytes survive
                deadline_ms: Some(9),
            },
            Request::Sim {
                model: "m".into(),
                stim: StimPayload::Text("101\n010 x2\n".into()),
                deadline_ms: None,
            },
            Request::Sim {
                model: "m".into(),
                stim: StimPayload::Packed(packed),
                deadline_ms: Some(u64::MAX),
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in reqs {
            let frame = BinaryCodec.encode_request(&req);
            assert_eq!(frame[0], BINARY_MAGIC);
            assert_eq!(BinaryCodec.decode_request(&frame).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn binary_frames_roundtrip_every_response_variant() {
        let packed = BitTensor::from_lanes(&[vec![true, false], vec![true, true]]);
        let resps = [
            Response::Pong { version: 4 },
            Response::Loaded {
                name: "m".into(),
                bytes: 123,
            },
            Response::SimResult {
                outputs: SimOutputs::Text(vec!["10".into(), "01".into()]),
                cycles: 2,
            },
            Response::SimResult {
                outputs: SimOutputs::Packed(packed),
                cycles: 2,
            },
            Response::Stats {
                models: vec![],
                server: ServerStatsReport::default(),
            },
            Response::ShuttingDown,
            Response::Overloaded { retry_after_ms: 5 },
            Response::DeadlineExceeded,
            Response::Error {
                message: "boom".into(),
            },
        ];
        for resp in resps {
            let frame = BinaryCodec.encode_response(&resp);
            assert_eq!(
                BinaryCodec.decode_response(&frame).unwrap(),
                resp,
                "{resp:?}"
            );
        }
    }

    #[test]
    fn packed_payloads_roundtrip_identically_on_the_json_wire() {
        let mut bt = BitTensor::zeros(3, 130); // ragged tail: 130 % 64 != 0
        bt.set_bit(0, 0, true);
        bt.set_bit(2, 129, true);
        bt.set_bit(1, 64, true);
        let req = Request::Sim {
            model: "m".into(),
            stim: StimPayload::Packed(bt.clone()),
            deadline_ms: None,
        };
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        let resp = Response::SimResult {
            outputs: SimOutputs::Packed(bt),
            cycles: 130,
        };
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn nonzero_ragged_tail_is_rejected_by_both_codecs() {
        // 2 features × 3 cycles → 1 word per plane, tail bits 3..64 invalid
        let words = vec![0b111u64, 1 << 40];
        let frame = {
            let mut p = Vec::new();
            push_bytes(&mut p, b"m");
            push_deadline(&mut p, &None);
            p.push(FORM_PACKED);
            push_u32(&mut p, 2);
            push_u32(&mut p, 3);
            for w in &words {
                p.extend_from_slice(&w.to_le_bytes());
            }
            binary_frame(K_SIM, p)
        };
        let err = BinaryCodec.decode_request(&frame).unwrap_err();
        assert!(err.message.contains("ragged"), "{err}");
        let body = format!(
            r#"{{"op":"sim","model":"m","stim_packed":{{"features":2,"cycles":3,"words":["7","{:x}"]}}}}"#,
            1u64 << 40
        );
        let err = Request::decode(&body).unwrap_err();
        assert!(err.message.contains("ragged"), "{err}");
    }

    #[test]
    fn encoders_mask_ragged_tails_to_the_canonical_wire_form() {
        let mut bt = BitTensor::zeros(1, 3);
        bt.set_bit(0, 1, true);
        bt.data_mut()[0] |= 1 << 50; // tail garbage a kernel may leave
        let req = Request::Sim {
            model: "m".into(),
            stim: StimPayload::Packed(bt),
            deadline_ms: None,
        };
        for frame in [
            BinaryCodec.encode_request(&req),
            JsonCodec.encode_request(&req),
        ] {
            let wire = WireFormat::sniff(frame[0]);
            let decoded = match wire
                .codec()
                .decode_request(&frame[..frame.len() - usize::from(wire == WireFormat::Json)])
            {
                Ok(r) => r,
                Err(e) => panic!("{e}"),
            };
            match decoded {
                Request::Sim {
                    stim: StimPayload::Packed(out),
                    ..
                } => {
                    assert!(out.get_bit(0, 1));
                    assert_eq!(out.data()[0], 0b010, "tails masked on {} wire", wire);
                }
                other => panic!("wanted packed sim, got {other:?}"),
            }
        }
    }

    #[test]
    fn frame_buffer_sniffs_codecs_per_frame() {
        let mut fb = FrameBuffer::new();
        fb.push(b"{\"op\":\"ping\"}\n");
        fb.push(&BinaryCodec.encode_request(&Request::Stats));
        let f1 = fb.next_frame().unwrap().unwrap();
        assert_eq!(f1.wire, WireFormat::Json);
        assert_eq!(f1.decode_request().unwrap(), Request::Ping);
        let f2 = fb.next_frame().unwrap().unwrap();
        assert_eq!(f2.wire, WireFormat::Binary);
        assert_eq!(f2.decode_request().unwrap(), Request::Stats);
        assert!(fb.next_frame().unwrap().is_none());
    }

    #[test]
    fn partial_binary_frames_wait_for_more_bytes() {
        let frame = BinaryCodec.encode_request(&Request::Sim {
            model: "m".into(),
            stim: StimPayload::Text("1\n".into()),
            deadline_ms: None,
        });
        let mut fb = FrameBuffer::new();
        for (i, b) in frame.iter().enumerate() {
            assert!(
                fb.next_frame().unwrap().is_none(),
                "complete after {i} bytes?"
            );
            assert!(!fb.has_complete_frame());
            fb.push(&[*b]);
        }
        assert!(fb.has_complete_frame());
        assert_eq!(fb.next_frame().unwrap().unwrap().bytes, frame);
    }

    #[test]
    fn oversized_binary_length_poisons_the_stream() {
        let mut fb = FrameBuffer::with_limits(FrameLimits {
            max_frame: 1024,
            ..FrameLimits::default()
        });
        let mut hdr = vec![BINARY_MAGIC, BINARY_WIRE_VERSION, K_PING, 0];
        hdr.extend_from_slice(&(u32::MAX).to_le_bytes());
        fb.push(&hdr);
        assert!(fb.has_complete_frame(), "defect is actionable");
        let err = fb.next_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("1024"), "{err}");
        assert!(fb.is_empty(), "poisoned buffer is cleared");
    }

    #[test]
    fn unsupported_binary_version_poisons_the_stream() {
        let mut fb = FrameBuffer::new();
        fb.push(&[BINARY_MAGIC, 99, K_PING, 0, 0, 0, 0, 0]);
        assert!(fb.has_complete_frame(), "defect is actionable");
        let err = fb.next_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn shared_limits_bound_the_json_path_too() {
        let mut fb = FrameBuffer::with_limits(FrameLimits {
            max_frame: 8,
            ..FrameLimits::default()
        });
        fb.push(b"aaaaaaaaaaaaaaaa");
        let err = fb.next_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("8 bytes"), "{err}");
    }

    #[test]
    fn stim_text_and_planes_convert_faithfully() {
        let text = "10\n01 x2\n# note\n11\n";
        let planes = stim_text_to_planes(text).unwrap();
        assert_eq!(planes.features(), 2);
        assert_eq!(planes.batch(), 4);
        let stim = parse_stim(text, 2).unwrap();
        assert_eq!(planes_to_stim(&planes).cycles, stim.cycles);
        // MSB-first rendering matches the input reading order
        assert_eq!(
            planes_to_output_strings(&planes),
            vec!["10", "01", "01", "11"]
        );
    }
}
