//! Load generation: closed- and open-loop drivers for the serving layer.
//!
//! The original `c2nn client --clients N --repeat R` driver is a *closed
//! loop*: each connection waits for its reply before sending again, so a
//! slow server quietly throttles its own load and the measured latencies
//! flatter it (coordinated omission). This module keeps that mode (it is
//! the right tool for saturation benchmarks) and adds an **open loop**:
//! arrivals are scheduled on a fixed timetable at a target rate, spread
//! over hundreds of connections, and each request's latency is measured
//! from its *scheduled* time — a request that waited behind a stalled
//! predecessor is charged for the wait, which is what a real client would
//! experience.
//!
//! Typed rejections are first-class outcomes, not errors: an `Overloaded`
//! or `DeadlineExceeded` reply is counted in its own bucket (the server
//! shedding load gracefully is the behavior under test), while transport
//! errors and untyped failures count as `failed`.

use crate::client::{Backoff, Client, ClientError};
use crate::protocol::{stim_text_to_planes, WireFormat};
use c2nn_core::BitTensor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How requests are paced.
#[derive(Clone, Debug)]
pub enum ArrivalMode {
    /// Each connection sends `repeat` requests back-to-back, waiting for
    /// every reply (closed loop; total = connections × repeat).
    Closed {
        /// Requests per connection.
        repeat: usize,
    },
    /// Each connection sends back-to-back for a wall-clock duration
    /// (closed loop; total depends on service rate).
    ClosedTimed {
        /// How long to keep sending.
        duration: Duration,
    },
    /// Arrivals scheduled at `rate` requests/s across all connections for
    /// `duration`; latency is measured from the scheduled arrival time.
    Open {
        /// Target request rate across the whole fleet, req/s.
        rate: f64,
        /// How long the schedule runs.
        duration: Duration,
    },
}

/// One load-generation run's parameters.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Model name to simulate against (must already be loaded).
    pub model: String,
    /// `.stim` testbench text sent with every request.
    pub stim: String,
    /// Concurrent connections.
    pub connections: usize,
    /// Pacing discipline.
    pub mode: ArrivalMode,
    /// Optional per-request deadline forwarded to the server.
    pub deadline_ms: Option<u64>,
    /// Transient-failure retries per request (closed modes only; the open
    /// loop never retries — a shed request is a data point).
    pub max_retries: u32,
    /// Seed for deterministic backoff jitter.
    pub seed: u64,
    /// Wire codec every worker connection speaks. Binary workers pack the
    /// stimulus into bit planes once and reuse it for every request, so
    /// the per-request cost is the codec itself, not `.stim` parsing.
    pub wire: WireFormat,
}

/// Outcome counts and latency percentiles for one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LoadReport {
    /// Requests sent (including ones that came back as typed rejections).
    pub sent: u64,
    /// Successful `SimResult` replies.
    pub ok: u64,
    /// Typed `Overloaded` rejections.
    pub overloaded: u64,
    /// Typed `DeadlineExceeded` rejections.
    pub deadline_exceeded: u64,
    /// Typed `ShuttingDown` rejections.
    pub shutting_down: u64,
    /// Transport errors and untyped server errors.
    pub failed: u64,
    /// Transient-failure retries performed (closed modes).
    pub retries: u64,
    /// Wall-clock run time in seconds.
    pub elapsed_s: f64,
    /// Successful replies per second of wall-clock.
    pub req_per_s: f64,
    /// Median latency, microseconds (from scheduled time in open loop).
    pub p50_us: u64,
    /// 90th-percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
}

c2nn_json::json_struct!(LoadReport {
    sent,
    ok,
    overloaded,
    deadline_exceeded,
    shutting_down,
    failed,
    retries,
    elapsed_s,
    req_per_s,
    p50_us,
    p90_us,
    p99_us,
    max_us,
});

#[derive(Default)]
struct Counters {
    sent: AtomicU64,
    ok: AtomicU64,
    overloaded: AtomicU64,
    deadline_exceeded: AtomicU64,
    shutting_down: AtomicU64,
    failed: AtomicU64,
    retries: AtomicU64,
}

impl Counters {
    /// Bucket one request outcome; returns whether it may be retried.
    fn record<T>(&self, outcome: &Result<T, ClientError>) -> bool {
        self.sent.fetch_add(1, Ordering::Relaxed);
        match outcome {
            Ok(_) => {
                self.ok.fetch_add(1, Ordering::Relaxed);
                false
            }
            Err(ClientError::Overloaded { .. }) => {
                self.overloaded.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(ClientError::DeadlineExceeded) => {
                self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                false
            }
            Err(ClientError::ShuttingDown) => {
                self.shutting_down.fetch_add(1, Ordering::Relaxed);
                false
            }
            Err(e) => {
                self.failed.fetch_add(1, Ordering::Relaxed);
                e.is_transient()
            }
        }
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Run one load generation according to `cfg` and aggregate the outcome.
/// Spawns `cfg.connections` worker threads, each owning one connection
/// (re-established on transport failure within the retry budget).
pub fn run(cfg: &LoadgenConfig) -> LoadReport {
    let connections = cfg.connections.max(1);
    let counters = Arc::new(Counters::default());
    let start = Instant::now();
    let mut workers = Vec::with_capacity(connections);
    for worker_id in 0..connections {
        let cfg = cfg.clone();
        let counters = Arc::clone(&counters);
        workers.push(
            std::thread::Builder::new()
                .name(format!("c2nn-loadgen-{worker_id}"))
                .spawn(move || worker_loop(worker_id, connections, &cfg, &counters, start))
                .expect("spawn loadgen worker"),
        );
    }
    let mut latencies: Vec<u64> = Vec::new();
    for w in workers {
        latencies.extend(w.join().unwrap_or_default());
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    latencies.sort_unstable();
    let ok = counters.ok.load(Ordering::Relaxed);
    LoadReport {
        sent: counters.sent.load(Ordering::Relaxed),
        ok,
        overloaded: counters.overloaded.load(Ordering::Relaxed),
        deadline_exceeded: counters.deadline_exceeded.load(Ordering::Relaxed),
        shutting_down: counters.shutting_down.load(Ordering::Relaxed),
        failed: counters.failed.load(Ordering::Relaxed),
        retries: counters.retries.load(Ordering::Relaxed),
        elapsed_s: elapsed,
        req_per_s: ok as f64 / elapsed,
        p50_us: percentile(&latencies, 0.50),
        p90_us: percentile(&latencies, 0.90),
        p99_us: percentile(&latencies, 0.99),
        max_us: latencies.last().copied().unwrap_or(0),
    }
}

/// One worker's life: connect, pace requests per the arrival mode, record
/// latencies (µs). Returns this worker's latency samples.
fn worker_loop(
    worker_id: usize,
    connections: usize,
    cfg: &LoadgenConfig,
    counters: &Counters,
    start: Instant,
) -> Vec<u64> {
    let mut backoff = Backoff::new(
        cfg.seed ^ (worker_id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        Duration::from_millis(2),
        Duration::from_millis(250),
    );
    let mut client =
        match Client::connect_with_retry(&cfg.addr, cfg.wire, &mut backoff, cfg.max_retries) {
            Ok((c, retries)) => {
                counters
                    .retries
                    .fetch_add(retries as u64, Ordering::Relaxed);
                Some(c)
            }
            Err(_) => None,
        };
    // binary workers pack the stimulus once; every request reuses the
    // planes (the point of the binary wire: no per-request parsing)
    let packed: Option<BitTensor> = match cfg.wire {
        WireFormat::Binary => stim_text_to_planes(&cfg.stim).ok(),
        WireFormat::Json => None,
    };
    let mut latencies = Vec::new();
    let mut send_one = |client: &mut Option<Client>, anchor: Instant, retry: bool| {
        let mut attempts = 0u32;
        loop {
            let outcome = match client.as_mut() {
                Some(c) => match &packed {
                    Some(planes) => c
                        .sim_packed_with_deadline(&cfg.model, planes, cfg.deadline_ms)
                        .map(|_| ()),
                    None => c
                        .sim_with_deadline(&cfg.model, &cfg.stim, cfg.deadline_ms)
                        .map(|_| ()),
                },
                None => Err(ClientError::Io(std::io::ErrorKind::NotConnected.into())),
            };
            if let Err(e) = &outcome {
                if matches!(e, ClientError::Io(_) | ClientError::Protocol(_)) {
                    *client = None; // transport is suspect; reconnect
                }
            }
            let transient = counters.record(&outcome);
            if outcome.is_ok() {
                let us = anchor.elapsed().as_micros().min(u64::MAX as u128) as u64;
                latencies.push(us);
                backoff.reset();
                return;
            }
            if !(retry && transient) || attempts >= cfg.max_retries {
                return;
            }
            attempts += 1;
            counters.retries.fetch_add(1, Ordering::Relaxed);
            let hint = outcome.as_ref().err().and_then(ClientError::retry_after);
            std::thread::sleep(backoff.next_delay(hint));
            if client.is_none() {
                if let Ok((c, r)) = Client::connect_with_retry(&cfg.addr, cfg.wire, &mut backoff, 2)
                {
                    counters.retries.fetch_add(r as u64, Ordering::Relaxed);
                    *client = Some(c);
                }
            }
        }
    };
    match &cfg.mode {
        ArrivalMode::Closed { repeat } => {
            for _ in 0..*repeat {
                send_one(&mut client, Instant::now(), true);
            }
        }
        ArrivalMode::ClosedTimed { duration } => {
            let end = start + *duration;
            while Instant::now() < end {
                send_one(&mut client, Instant::now(), true);
            }
        }
        ArrivalMode::Open { rate, duration } => {
            // worker k owns arrivals k, k+C, k+2C, ... of the global
            // schedule; a request that starts late (predecessor stalled)
            // is charged its wait — no coordinated omission
            let rate = rate.max(1e-6);
            let mut i = worker_id as u64;
            loop {
                let offset = Duration::from_secs_f64(i as f64 / rate);
                if offset >= *duration {
                    break;
                }
                let scheduled = start + offset;
                let now = Instant::now();
                if scheduled > now {
                    std::thread::sleep(scheduled - now);
                }
                send_one(&mut client, scheduled, false);
                i += connections as u64;
            }
        }
    }
    latencies
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_indexing() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }

    #[test]
    fn report_roundtrips_as_json() {
        let r = LoadReport {
            sent: 10,
            ok: 8,
            overloaded: 2,
            elapsed_s: 1.5,
            req_per_s: 5.33,
            p50_us: 100,
            ..LoadReport::default()
        };
        let json = c2nn_json::ToJson::to_json(&r).to_string_compact();
        let parsed: LoadReport =
            c2nn_json::FromJson::from_json(&c2nn_json::parse(&json).unwrap()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn typed_outcomes_bucket_correctly() {
        let c = Counters::default();
        let err = |e: ClientError| -> Result<(), ClientError> { Err(e) };
        assert!(!c.record(&Ok(())));
        assert!(c.record(&err(ClientError::Overloaded { retry_after_ms: 5 })));
        assert!(!c.record(&err(ClientError::DeadlineExceeded)));
        assert!(!c.record(&err(ClientError::ShuttingDown)));
        assert!(!c.record(&err(ClientError::Server("boom".into()))));
        assert_eq!(c.sent.load(Ordering::Relaxed), 5);
        assert_eq!(c.ok.load(Ordering::Relaxed), 1);
        assert_eq!(c.overloaded.load(Ordering::Relaxed), 1);
        assert_eq!(c.deadline_exceeded.load(Ordering::Relaxed), 1);
        assert_eq!(c.shutting_down.load(Ordering::Relaxed), 1);
        assert_eq!(c.failed.load(Ordering::Relaxed), 1);
    }
}
