//! Deterministic fault injection for the serving stack.
//!
//! PR 1's `faults` module proved fault injection at the *model* level
//! (bit-flips in weights and state). This module lifts the same discipline
//! to the *service* level: every failure mode the server claims to survive
//! — hostile clients, corrupt frames, worker panics, scheduler stalls — can
//! be injected on demand, driven by a seeded RNG so a failing scenario
//! reproduces byte-for-byte.
//!
//! Two halves:
//!
//! * **Server-side injection** ([`Chaos`]): constructed from a
//!   [`ChaosConfig`] spec (`c2nn serve --chaos "seed=7,worker_panic=1,..."`)
//!   and consulted by the scheduler before each batch. Injections are
//!   probability-gated *and* budget-capped, so a test can say "exactly one
//!   worker panic, then clean" (`worker_panic=1,worker_panic_budget=1`).
//! * **Hostile-client helpers** ([`slow_loris_request`],
//!   [`send_corrupt_frame`], [`send_truncated_frame`]): drive the listed
//!   attack patterns against a live server; used by the chaos integration
//!   suite and the CI `chaos-smoke` job.
//!
//! Nothing here runs unless a `Chaos` handle is installed — a production
//! server with no `--chaos` flag pays one `Option` check per batch.

use crate::protocol::{FrameReader, Request, Response};
use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// Small deterministic RNG (splitmix64). Not cryptographic — its job is
/// reproducible chaos schedules and backoff jitter, keyed by a seed that a
/// failing CI run can print.
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    /// Seeded generator; the same seed yields the same sequence forever.
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`; returns 0 when `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// `base` jittered uniformly into `[base/2, base]` — the classic
    /// "equal jitter" backoff shape that decorrelates retry storms while
    /// keeping a floor.
    pub fn jitter(&mut self, base: Duration) -> Duration {
        let half = base / 2;
        half + Duration::from_nanos(self.next_below(half.as_nanos().min(u64::MAX as u128) as u64))
    }
}

// ---------------------------------------------------------------------------
// Config + injection state
// ---------------------------------------------------------------------------

/// Parsed `--chaos` spec. All rates are probabilities in `[0, 1]` rolled
/// per batch; budgets cap the total number of injections (default
/// unlimited) so scenarios terminate deterministically.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosConfig {
    /// RNG seed; the whole injection schedule is a pure function of it.
    pub seed: u64,
    /// Probability that a batch's forward pass loses a pool worker to an
    /// injected panic.
    pub worker_panic: f64,
    /// Maximum worker panics to ever inject.
    pub worker_panic_budget: u64,
    /// Probability that the scheduler stalls for [`stall_ms`](Self::stall_ms)
    /// before dispatching a batch.
    pub stall: f64,
    /// Stall length in milliseconds.
    pub stall_ms: u64,
    /// Maximum stalls to ever inject.
    pub stall_budget: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            worker_panic: 0.0,
            worker_panic_budget: u64::MAX,
            stall: 0.0,
            stall_ms: 20,
            stall_budget: u64::MAX,
        }
    }
}

impl ChaosConfig {
    /// Parse a comma-separated `key=value` spec, e.g.
    /// `"seed=7,worker_panic=0.05,stall=0.1,stall_ms=50,stall_budget=3"`.
    /// Unknown keys, bad numbers, and out-of-range rates are typed errors —
    /// a chaos run with a typo'd spec must not silently test nothing.
    pub fn parse(spec: &str) -> Result<ChaosConfig, String> {
        let mut cfg = ChaosConfig::default();
        for part in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec: `{part}` is not key=value"))?;
            let int = |v: &str| {
                v.parse::<u64>()
                    .map_err(|_| format!("chaos spec: {key} expects an integer, got `{v}`"))
            };
            let rate = |v: &str| {
                v.parse::<f64>()
                    .ok()
                    .filter(|p| (0.0..=1.0).contains(p))
                    .ok_or_else(|| {
                        format!("chaos spec: {key} expects a probability in [0,1], got `{v}`")
                    })
            };
            match key.trim() {
                "seed" => cfg.seed = int(value)?,
                "worker_panic" => cfg.worker_panic = rate(value)?,
                "worker_panic_budget" => cfg.worker_panic_budget = int(value)?,
                "stall" => cfg.stall = rate(value)?,
                "stall_ms" => cfg.stall_ms = int(value)?,
                "stall_budget" => cfg.stall_budget = int(value)?,
                other => return Err(format!("chaos spec: unknown key `{other}`")),
            }
        }
        Ok(cfg)
    }
}

/// Live injection state: the parsed config, the seeded RNG, remaining
/// budgets, and counters of what was actually injected (exported through
/// the server stats endpoint so a chaos run can assert its schedule fired).
pub struct Chaos {
    cfg: ChaosConfig,
    rng: Mutex<Rng>,
    panics_left: AtomicU64,
    stalls_left: AtomicU64,
    injected_panics: AtomicU64,
    injected_stalls: AtomicU64,
}

impl fmt::Debug for Chaos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Chaos")
            .field("cfg", &self.cfg)
            .field("injected", &self.injected())
            .finish()
    }
}

impl Chaos {
    /// Arm a chaos schedule.
    pub fn new(cfg: ChaosConfig) -> Arc<Chaos> {
        Arc::new(Chaos {
            rng: Mutex::new(Rng::new(cfg.seed)),
            panics_left: AtomicU64::new(cfg.worker_panic_budget),
            stalls_left: AtomicU64::new(cfg.stall_budget),
            injected_panics: AtomicU64::new(0),
            injected_stalls: AtomicU64::new(0),
            cfg,
        })
    }

    /// The schedule this instance was armed with.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// Total injections performed so far (panics + stalls).
    pub fn injected(&self) -> u64 {
        self.injected_panics.load(Ordering::Relaxed) + self.injected_stalls.load(Ordering::Relaxed)
    }

    /// Worker panics injected so far.
    pub fn injected_panics(&self) -> u64 {
        self.injected_panics.load(Ordering::Relaxed)
    }

    /// Scheduler stalls injected so far.
    pub fn injected_stalls(&self) -> u64 {
        self.injected_stalls.load(Ordering::Relaxed)
    }

    fn roll(&self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.rng
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .next_f64()
            < p
    }

    fn take_budget(left: &AtomicU64) -> bool {
        left.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Should this batch lose a worker? Consumes budget only on a hit.
    pub fn take_worker_panic(&self) -> bool {
        if self.roll(self.cfg.worker_panic) && Self::take_budget(&self.panics_left) {
            self.injected_panics.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Should the scheduler stall before this batch, and for how long?
    pub fn take_stall(&self) -> Option<Duration> {
        if self.roll(self.cfg.stall) && Self::take_budget(&self.stalls_left) {
            self.injected_stalls.fetch_add(1, Ordering::Relaxed);
            return Some(Duration::from_millis(self.cfg.stall_ms));
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Hostile-client helpers
// ---------------------------------------------------------------------------

/// Read one response frame with a hard timeout, so a wedged server fails a
/// chaos scenario instead of hanging it.
fn read_response(stream: TcpStream, timeout: Duration) -> Result<Response, String> {
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("set_read_timeout: {e}"))?;
    let mut reader = FrameReader::new(stream);
    let frame = reader
        .read_frame()
        .map_err(|e| format!("reading response: {e}"))?
        .ok_or_else(|| "server closed before replying".to_string())?;
    frame.decode_response().map_err(|e| e.to_string())
}

/// Slow-loris: send a legitimate request one byte at a time with
/// `byte_delay` pauses, then read the reply. A robust server serves it
/// (slowly) without starving other connections or wedging; the caller
/// asserts on the decoded [`Response`].
pub fn slow_loris_request(
    addr: &str,
    req: &Request,
    byte_delay: Duration,
    reply_timeout: Duration,
) -> Result<Response, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut body = req.encode().into_bytes();
    body.push(b'\n');
    for b in &body {
        stream
            .write_all(&[*b])
            .map_err(|e| format!("slow write: {e}"))?;
        stream.flush().ok();
        std::thread::sleep(byte_delay);
    }
    read_response(stream, reply_timeout)
}

/// Send `len` seeded random bytes terminated by a newline — a syntactically
/// complete but garbage frame — and return the server's reply. A robust
/// server answers with a typed `Error` (bad UTF-8 or bad JSON) and keeps
/// the process alive.
pub fn send_corrupt_frame(
    addr: &str,
    rng: &mut Rng,
    len: usize,
    reply_timeout: Duration,
) -> Result<Response, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut bytes: Vec<u8> = (0..len)
        .map(|_| {
            // any byte except the frame terminator
            let b = (rng.next_u64() & 0xFF) as u8;
            if b == b'\n' {
                b'\r'
            } else {
                b
            }
        })
        .collect();
    bytes.push(b'\n');
    stream
        .write_all(&bytes)
        .map_err(|e| format!("write: {e}"))?;
    read_response(stream, reply_timeout)
}

/// Send the first `keep` bytes of a valid request frame, then abandon the
/// connection (truncated frame). The server must treat the mid-frame EOF
/// as that connection's problem only. Returns the bytes actually sent.
pub fn send_truncated_frame(addr: &str, req: &Request, keep: usize) -> Result<usize, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let body = req.encode().into_bytes(); // no trailing newline: always truncated
    let keep = keep.min(body.len());
    stream
        .write_all(&body[..keep])
        .map_err(|e| format!("write: {e}"))?;
    stream.flush().ok();
    // explicit half-close so the server sees EOF mid-frame immediately
    stream.shutdown(std::net::Shutdown::Write).ok();
    let mut sink = [0u8; 64];
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .ok();
    let _ = stream.read(&mut sink); // drain any typed error reply
    Ok(keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let f = Rng::new(7).next_f64();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn jitter_stays_in_half_open_band() {
        let mut rng = Rng::new(3);
        let base = Duration::from_millis(100);
        for _ in 0..200 {
            let j = rng.jitter(base);
            assert!(j >= base / 2 && j <= base, "{j:?}");
        }
    }

    #[test]
    fn spec_parses_and_rejects() {
        let cfg = ChaosConfig::parse("seed=7, worker_panic=1, worker_panic_budget=2").unwrap();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.worker_panic, 1.0);
        assert_eq!(cfg.worker_panic_budget, 2);
        assert_eq!(ChaosConfig::parse("").unwrap(), ChaosConfig::default());
        assert!(ChaosConfig::parse("bogus=1").is_err());
        assert!(
            ChaosConfig::parse("worker_panic=2").is_err(),
            "rate > 1 rejected"
        );
        assert!(
            ChaosConfig::parse("stall_ms").is_err(),
            "missing value rejected"
        );
    }

    #[test]
    fn budgets_cap_injections() {
        let chaos = Chaos::new(ChaosConfig::parse("worker_panic=1,worker_panic_budget=2").unwrap());
        assert!(chaos.take_worker_panic());
        assert!(chaos.take_worker_panic());
        assert!(!chaos.take_worker_panic(), "budget exhausted");
        assert_eq!(chaos.injected_panics(), 2);
    }

    #[test]
    fn zero_rate_never_fires() {
        let chaos = Chaos::new(ChaosConfig::default());
        for _ in 0..100 {
            assert!(!chaos.take_worker_panic());
            assert!(chaos.take_stall().is_none());
        }
        assert_eq!(chaos.injected(), 0);
    }

    #[test]
    fn stall_carries_configured_length() {
        let chaos = Chaos::new(ChaosConfig::parse("stall=1,stall_ms=35,stall_budget=1").unwrap());
        assert_eq!(chaos.take_stall(), Some(Duration::from_millis(35)));
        assert_eq!(chaos.take_stall(), None);
        assert_eq!(chaos.injected_stalls(), 1);
    }
}
