//! Model registry: load, validate, cache, and evict compiled networks.
//!
//! Every model enters through [`Registry::load`], which parses the
//! compiled-model JSON and runs the full structural validation
//! (`CompiledNn::validate`) before the model is ever allowed near the
//! scheduler — a serving process never simulates an inconsistent network.
//! Admitted models are cached under a configurable byte budget with LRU
//! eviction; evicting a model drops its `Arc<ServedModel>`, which closes
//! the batcher queue so the model's batcher thread exits once in-flight
//! requests drain (clients holding the old `Arc` finish normally).
//!
//! Installation is also where the execution backend is chosen: the
//! configured [`Choice`](c2nn_hal::Choice) is resolved against the
//! global [`c2nn_hal::BackendRegistry`] using this registry's
//! [`DeviceCalibration`], so a model no backend can run (or a named
//! backend refuses) is rejected here with a typed reason — never
//! discovered inside a batcher thread.

use crate::admission::Admission;
use crate::chaos::Chaos;
use crate::metrics::IoGauges;
use crate::protocol::{BackendSelectionReport, ServerStatsReport};
use crate::scheduler::{BatchConfig, ServedModel};
use crate::stats::ModelCounters;
use c2nn_core::CompiledNn;
use c2nn_hal::DeviceCalibration;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

/// Registry-wide configuration.
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Total model-weight budget in bytes. When exceeded, least-recently
    /// used models are evicted (the most recent model always stays, even
    /// if it alone exceeds the budget).
    pub byte_budget: usize,
    /// Batching parameters applied to every admitted model.
    pub batch: BatchConfig,
    /// Global bound on `sim` requests between admission and reply; past
    /// it, clients get typed `Overloaded` replies instead of queueing.
    pub max_inflight: usize,
    /// Soft per-model bound on queued+running requests, so one hot model
    /// cannot starve the rest.
    pub max_inflight_per_model: usize,
    /// Armed chaos schedule injected into every model's batcher
    /// (`None` in production).
    pub chaos: Option<Arc<Chaos>>,
    /// Per-backend cost model consulted when resolving
    /// [`BatchConfig::backend`] at install time (typically loaded from
    /// `results/DEVICE.json`; defaults to the built-in host numbers).
    pub calibration: Arc<DeviceCalibration>,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            byte_budget: 512 << 20,
            batch: BatchConfig::default(),
            max_inflight: 1024,
            max_inflight_per_model: 512,
            chaos: None,
            calibration: Arc::new(DeviceCalibration::default_host(
                c2nn_tensor::Pool::global().threads(),
            )),
        }
    }
}

struct EntryCell {
    model: Arc<ServedModel>,
    last_used: u64,
}

struct Inner {
    entries: Vec<EntryCell>,
    tick: u64,
}

/// Thread-safe model cache with LRU byte-budget eviction, plus the
/// server's admission-control state (the registry is the natural owner:
/// it is the one component every request path already touches).
pub struct Registry {
    cfg: RegistryConfig,
    admission: Arc<Admission>,
    io: Arc<IoGauges>,
    inner: Mutex<Inner>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new(cfg: RegistryConfig) -> Registry {
        // retry hint = one coalescing window: the time the scheduler needs
        // to drain one batch's worth of queued lanes
        let retry_hint_ms = cfg.batch.max_wait.as_millis().clamp(1, 1_000) as u64;
        let admission = Admission::new(cfg.max_inflight, cfg.max_inflight_per_model, retry_hint_ms);
        Registry {
            admission,
            cfg,
            io: Arc::new(IoGauges::default()),
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                tick: 0,
            }),
        }
    }

    /// The admission-control state shared with connection handlers and
    /// every model's batcher.
    pub fn admission(&self) -> &Arc<Admission> {
        &self.admission
    }

    /// Connection/event-loop gauges, fed by whichever I/O model serves
    /// this registry and rendered by the metrics exposition.
    pub fn gauges(&self) -> &Arc<IoGauges> {
        &self.io
    }

    /// The armed chaos schedule, if any.
    pub fn chaos(&self) -> Option<&Arc<Chaos>> {
        self.cfg.chaos.as_ref()
    }

    /// Server-wide overload/health counters for the stats endpoint,
    /// including the per-backend selection rollup over cached models.
    pub fn server_report(&self) -> ServerStatsReport {
        let backends = {
            let inner = self.inner.lock().unwrap();
            let mut rollup: Vec<BackendSelectionReport> = Vec::new();
            for e in &inner.entries {
                let m = &e.model;
                let entry = match rollup.iter_mut().find(|r| r.backend == m.backend) {
                    Some(r) => r,
                    None => {
                        rollup.push(BackendSelectionReport {
                            backend: m.backend.clone(),
                            ..BackendSelectionReport::default()
                        });
                        rollup.last_mut().unwrap()
                    }
                };
                entry.models += 1;
                entry.auto_selected += m.auto_selected as u64;
                entry.requests += m.stats.requests.load(Ordering::Relaxed);
            }
            rollup.sort_by(|a, b| a.backend.cmp(&b.backend));
            rollup
        };
        let adm = &self.admission;
        ServerStatsReport {
            backends,
            inflight: adm.inflight() as u64,
            max_inflight: adm.max_inflight().min(u64::MAX as usize) as u64,
            pressure: format!("{:?}", adm.pressure()).to_lowercase(),
            draining: adm.draining(),
            rejected_sims: adm.rejected_sims.load(Ordering::Relaxed),
            rejected_loads: adm.rejected_loads.load(Ordering::Relaxed),
            rejected_draining: adm.rejected_draining.load(Ordering::Relaxed),
            pool_poisoned_epochs: c2nn_tensor::Pool::global().poisoned_epochs(),
            chaos_injected: self.cfg.chaos.as_ref().map_or(0, |c| c.injected()),
            wire_json_frames: self.io.wire_frames(crate::protocol::WireFormat::Json),
            wire_binary_frames: self.io.wire_frames(crate::protocol::WireFormat::Binary),
        }
    }

    /// Parse, validate, and admit a model from an opaque compiled-model
    /// document (UTF-8 JSON bytes — the wire carries them without caring).
    /// Replaces any existing model of the same name.
    pub fn load(&self, name: &str, model: &[u8]) -> Result<Arc<ServedModel>, String> {
        let text = std::str::from_utf8(model)
            .map_err(|_| format!("model '{name}' rejected: document is not valid UTF-8"))?;
        let nn = CompiledNn::<f32>::from_json_str(text)
            .map_err(|e| format!("model '{name}' rejected: {e}"))?;
        self.install(name, nn)
    }

    /// Validate and admit an already-compiled model. `compile` output
    /// always passes validation, but models arriving over the wire or
    /// from stale files may not. Backend selection happens here: a model
    /// the configured backend (or, under `auto`, every calibrated
    /// backend) refuses is rejected with the typed admission reason.
    pub fn install(&self, name: &str, nn: CompiledNn<f32>) -> Result<Arc<ServedModel>, String> {
        nn.validate()
            .map_err(|e| format!("model '{name}' failed validation: {e}"))?;
        let model = ServedModel::spawn_selected(
            name,
            nn,
            self.cfg.batch.clone(),
            &self.cfg.calibration,
            Arc::clone(&self.admission),
            self.cfg.chaos.clone(),
        )
        .map_err(|e| format!("model '{name}' rejected: {e}"))?;
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.retain(|e| e.model.name != name);
        inner.entries.push(EntryCell {
            model: Arc::clone(&model),
            last_used: tick,
        });
        self.evict_locked(&mut inner);
        Ok(model)
    }

    /// Look up a model by name, marking it most-recently used.
    pub fn get(&self, name: &str) -> Option<Arc<ServedModel>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.entries.iter_mut().find(|e| e.model.name == name)?;
        entry.last_used = tick;
        Some(Arc::clone(&entry.model))
    }

    /// Names of currently cached models, most recently used first.
    pub fn names(&self) -> Vec<String> {
        let inner = self.inner.lock().unwrap();
        let mut entries: Vec<(&u64, &str)> = inner
            .entries
            .iter()
            .map(|e| (&e.last_used, e.model.name.as_str()))
            .collect();
        entries.sort_by(|a, b| b.0.cmp(a.0));
        entries.into_iter().map(|(_, n)| n.to_string()).collect()
    }

    /// Snapshot the stats of every cached model.
    pub fn stats(&self) -> Vec<crate::protocol::ModelStatsReport> {
        let inner = self.inner.lock().unwrap();
        inner.entries.iter().map(|e| e.model.report()).collect()
    }

    /// Total bytes of all cached models.
    pub fn total_bytes(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.entries.iter().map(|e| e.model.bytes).sum()
    }

    fn evict_locked(&self, inner: &mut Inner) {
        loop {
            let total: usize = inner.entries.iter().map(|e| e.model.bytes).sum();
            if total <= self.cfg.byte_budget || inner.entries.len() <= 1 {
                return;
            }
            let victim = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("non-empty entries");
            inner.entries.remove(victim);
        }
    }

    /// Shared counters of a model, if cached (used by tests and the stats
    /// endpoint without bumping LRU recency).
    pub fn peek_stats(&self, name: &str) -> Option<Arc<ModelCounters>> {
        let inner = self.inner.lock().unwrap();
        inner
            .entries
            .iter()
            .find(|e| e.model.name == name)
            .map(|e| Arc::clone(&e.model.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2nn_circuits::generators::counter;
    use c2nn_core::{compile, CompileOptions};

    fn counter_nn(width: usize) -> CompiledNn<f32> {
        compile(&counter(width), CompileOptions::with_l(4)).unwrap()
    }

    fn tiny_registry(byte_budget: usize) -> Registry {
        Registry::new(RegistryConfig {
            byte_budget,
            ..RegistryConfig::default()
        })
    }

    #[test]
    fn load_validates_and_caches() {
        let reg = tiny_registry(usize::MAX);
        let json = counter_nn(4).to_json_string();
        let m = reg.load("ctr", json.as_bytes()).unwrap();
        assert_eq!(m.nn.num_primary_inputs, 1);
        assert!(reg.get("ctr").is_some());
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn malformed_model_is_rejected() {
        let reg = tiny_registry(usize::MAX);
        let err = reg.load("bad", b"{\"not\": \"a model\"}").unwrap_err();
        assert!(err.contains("rejected"), "{err}");
        assert!(reg.get("bad").is_none());
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        // budget fits roughly two counters; loading a third evicts the
        // least recently used
        let one = counter_nn(4).memory_bytes();
        let reg = tiny_registry(one * 2 + one / 2);
        reg.install("a", counter_nn(4)).unwrap();
        reg.install("b", counter_nn(4)).unwrap();
        reg.get("a"); // bump a → b is now LRU
        reg.install("c", counter_nn(4)).unwrap();
        assert!(reg.get("b").is_none(), "b was LRU and must be evicted");
        assert!(reg.get("a").is_some());
        assert!(reg.get("c").is_some());
        assert!(reg.total_bytes() <= one * 2 + one / 2);
    }

    #[test]
    fn newest_model_survives_even_over_budget() {
        let reg = tiny_registry(1); // absurdly small
        reg.install("only", counter_nn(4)).unwrap();
        assert!(
            reg.get("only").is_some(),
            "most recent model is never evicted"
        );
    }

    #[test]
    fn unknown_backend_is_a_typed_install_error() {
        let reg = Registry::new(RegistryConfig {
            batch: BatchConfig {
                backend: c2nn_hal::Choice::Named("tpu".to_string()),
                ..BatchConfig::default()
            },
            ..RegistryConfig::default()
        });
        let err = reg.install("m", counter_nn(4)).unwrap_err();
        assert!(err.contains("unknown backend `tpu`"), "{err}");
        assert!(err.contains("scalar") && err.contains("bitplane"), "{err}");
        assert!(reg.get("m").is_none());
    }

    #[test]
    fn server_report_rolls_up_backend_selections() {
        let reg = tiny_registry(usize::MAX);
        reg.install("a", counter_nn(4)).unwrap();
        reg.install("b", counter_nn(6)).unwrap();
        let report = reg.server_report();
        let total_models: u64 = report.backends.iter().map(|b| b.models).sum();
        assert_eq!(total_models, 2);
        // default config is auto: every selection is cost-model driven
        for b in &report.backends {
            assert_eq!(b.auto_selected, b.models, "{b:?}");
        }
    }

    #[test]
    fn reload_replaces_in_place() {
        let reg = tiny_registry(usize::MAX);
        reg.install("m", counter_nn(4)).unwrap();
        reg.install("m", counter_nn(6)).unwrap();
        assert_eq!(reg.names(), vec!["m".to_string()]);
        let m = reg.get("m").unwrap();
        assert_eq!(m.nn.num_primary_outputs, 6);
    }
}
