//! Model registry: load, validate, cache, and evict compiled networks.
//!
//! Every model enters through [`Registry::load`], which parses the
//! compiled-model JSON and runs the full structural validation
//! (`CompiledNn::validate`) before the model is ever allowed near the
//! scheduler — a serving process never simulates an inconsistent network.
//! Admitted models are cached under a configurable byte budget with LRU
//! eviction; evicting a model drops its `Arc<ServedModel>`, which closes
//! the batcher queue so the model's batcher thread exits once in-flight
//! requests drain (clients holding the old `Arc` finish normally).

use crate::scheduler::{BatchConfig, ServedModel};
use crate::stats::ModelCounters;
use c2nn_core::CompiledNn;
use std::sync::{Arc, Mutex};

/// Registry-wide configuration.
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Total model-weight budget in bytes. When exceeded, least-recently
    /// used models are evicted (the most recent model always stays, even
    /// if it alone exceeds the budget).
    pub byte_budget: usize,
    /// Batching parameters applied to every admitted model.
    pub batch: BatchConfig,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            byte_budget: 512 << 20,
            batch: BatchConfig::default(),
        }
    }
}

struct EntryCell {
    model: Arc<ServedModel>,
    last_used: u64,
}

struct Inner {
    entries: Vec<EntryCell>,
    tick: u64,
}

/// Thread-safe model cache with LRU byte-budget eviction.
pub struct Registry {
    cfg: RegistryConfig,
    inner: Mutex<Inner>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new(cfg: RegistryConfig) -> Registry {
        Registry {
            cfg,
            inner: Mutex::new(Inner { entries: Vec::new(), tick: 0 }),
        }
    }

    /// Parse, validate, and admit a model from compiled-model JSON.
    /// Replaces any existing model of the same name.
    pub fn load(&self, name: &str, model_json: &str) -> Result<Arc<ServedModel>, String> {
        let nn = CompiledNn::<f32>::from_json_str(model_json)
            .map_err(|e| format!("model '{name}' rejected: {e}"))?;
        self.install(name, nn)
    }

    /// Validate and admit an already-compiled model. `compile` output
    /// always passes validation, but models arriving over the wire or
    /// from stale files may not.
    pub fn install(&self, name: &str, nn: CompiledNn<f32>) -> Result<Arc<ServedModel>, String> {
        nn.validate()
            .map_err(|e| format!("model '{name}' failed validation: {e}"))?;
        let model = ServedModel::spawn(name, nn, self.cfg.batch.clone());
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.retain(|e| e.model.name != name);
        inner.entries.push(EntryCell { model: Arc::clone(&model), last_used: tick });
        self.evict_locked(&mut inner);
        Ok(model)
    }

    /// Look up a model by name, marking it most-recently used.
    pub fn get(&self, name: &str) -> Option<Arc<ServedModel>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.entries.iter_mut().find(|e| e.model.name == name)?;
        entry.last_used = tick;
        Some(Arc::clone(&entry.model))
    }

    /// Names of currently cached models, most recently used first.
    pub fn names(&self) -> Vec<String> {
        let inner = self.inner.lock().unwrap();
        let mut entries: Vec<(&u64, &str)> = inner
            .entries
            .iter()
            .map(|e| (&e.last_used, e.model.name.as_str()))
            .collect();
        entries.sort_by(|a, b| b.0.cmp(a.0));
        entries.into_iter().map(|(_, n)| n.to_string()).collect()
    }

    /// Snapshot the stats of every cached model.
    pub fn stats(&self) -> Vec<crate::protocol::ModelStatsReport> {
        let inner = self.inner.lock().unwrap();
        inner
            .entries
            .iter()
            .map(|e| e.model.stats.report(&e.model.name, e.model.bytes))
            .collect()
    }

    /// Total bytes of all cached models.
    pub fn total_bytes(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.entries.iter().map(|e| e.model.bytes).sum()
    }

    fn evict_locked(&self, inner: &mut Inner) {
        loop {
            let total: usize = inner.entries.iter().map(|e| e.model.bytes).sum();
            if total <= self.cfg.byte_budget || inner.entries.len() <= 1 {
                return;
            }
            let victim = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("non-empty entries");
            inner.entries.remove(victim);
        }
    }

    /// Shared counters of a model, if cached (used by tests and the stats
    /// endpoint without bumping LRU recency).
    pub fn peek_stats(&self, name: &str) -> Option<Arc<ModelCounters>> {
        let inner = self.inner.lock().unwrap();
        inner
            .entries
            .iter()
            .find(|e| e.model.name == name)
            .map(|e| Arc::clone(&e.model.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2nn_circuits::generators::counter;
    use c2nn_core::{compile, CompileOptions};

    fn counter_nn(width: usize) -> CompiledNn<f32> {
        compile(&counter(width), CompileOptions::with_l(4)).unwrap()
    }

    fn tiny_registry(byte_budget: usize) -> Registry {
        Registry::new(RegistryConfig { byte_budget, batch: BatchConfig::default() })
    }

    #[test]
    fn load_validates_and_caches() {
        let reg = tiny_registry(usize::MAX);
        let json = counter_nn(4).to_json_string();
        let m = reg.load("ctr", &json).unwrap();
        assert_eq!(m.nn.num_primary_inputs, 1);
        assert!(reg.get("ctr").is_some());
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn malformed_model_is_rejected() {
        let reg = tiny_registry(usize::MAX);
        let err = reg.load("bad", "{\"not\": \"a model\"}").unwrap_err();
        assert!(err.contains("rejected"), "{err}");
        assert!(reg.get("bad").is_none());
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        // budget fits roughly two counters; loading a third evicts the
        // least recently used
        let one = counter_nn(4).memory_bytes();
        let reg = tiny_registry(one * 2 + one / 2);
        reg.install("a", counter_nn(4)).unwrap();
        reg.install("b", counter_nn(4)).unwrap();
        reg.get("a"); // bump a → b is now LRU
        reg.install("c", counter_nn(4)).unwrap();
        assert!(reg.get("b").is_none(), "b was LRU and must be evicted");
        assert!(reg.get("a").is_some());
        assert!(reg.get("c").is_some());
        assert!(reg.total_bytes() <= one * 2 + one / 2);
    }

    #[test]
    fn newest_model_survives_even_over_budget() {
        let reg = tiny_registry(1); // absurdly small
        reg.install("only", counter_nn(4)).unwrap();
        assert!(reg.get("only").is_some(), "most recent model is never evicted");
    }

    #[test]
    fn reload_replaces_in_place() {
        let reg = tiny_registry(usize::MAX);
        reg.install("m", counter_nn(4)).unwrap();
        reg.install("m", counter_nn(6)).unwrap();
        assert_eq!(reg.names(), vec!["m".to_string()]);
        let m = reg.get("m").unwrap();
        assert_eq!(m.nn.num_primary_outputs, 6);
    }
}
