//! Lock-free per-model serving counters and a log-bucketed latency
//! histogram.
//!
//! Counters are plain relaxed atomics: the stats surface is observability,
//! not accounting — a reader racing a writer may see a batch's `lanes`
//! before its `batches` increment, which is harmless. Latencies go into
//! power-of-two microsecond buckets; quantiles report the bucket's upper
//! bound, which is exact enough to tell "tens of microseconds" from
//! "milliseconds because the coalescing deadline dominated".

use crate::protocol::ModelStatsReport;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two latency buckets (also the length of
/// [`LatencyHistogram::bucket_counts`]).
pub const BUCKETS: usize = 40;

/// Histogram over `2^i` microsecond buckets.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    /// Total of all recorded latencies, for the Prometheus `_sum` sample.
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one latency observation.
    pub fn observe_us(&self, us: u64) {
        let b = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Per-bucket observation counts (not cumulative), index `i` covering
    /// latencies up to [`bucket_upper_bound_us`]`(i)`.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.bucket_counts().iter().sum()
    }

    /// Sum of all recorded latencies in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// The upper bound (µs) of the bucket containing quantile `q` (0..=1).
    /// Returns 0 when no observations were recorded.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return upper_bound_us(i);
            }
        }
        upper_bound_us(BUCKETS - 1)
    }
}

/// Upper bound (µs) of histogram bucket `i` — shared with the Prometheus
/// renderer, which derives its `le` labels from the same boundaries.
pub fn bucket_upper_bound_us(bucket: usize) -> u64 {
    upper_bound_us(bucket)
}

fn upper_bound_us(bucket: usize) -> u64 {
    if bucket >= 63 {
        u64::MAX
    } else {
        (1u64 << bucket).saturating_sub(1).max(1)
    }
}

/// Counters for one served model. Shared (`Arc`) between the request
/// handlers, the batcher thread, and the stats reporter.
#[derive(Default)]
pub struct ModelCounters {
    /// `sim` requests accepted (stimulus parsed, handed to the scheduler).
    pub requests: AtomicU64,
    /// Batched simulator runs executed.
    pub batches: AtomicU64,
    /// Total lanes across all executed batches.
    pub lanes: AtomicU64,
    /// Requests queued or being simulated right now.
    pub queue_depth: AtomicU64,
    /// Lanes shed with `DeadlineExceeded` before batch dispatch.
    pub deadline_exceeded: AtomicU64,
    /// Enqueue→reply latency distribution.
    pub latency: LatencyHistogram,
}

impl ModelCounters {
    /// Snapshot into the wire-format report. `backend` is the execution
    /// backend label the model was admitted on; `auto_selected` records
    /// whether the cost model picked it.
    pub fn report(
        &self,
        name: &str,
        bytes: usize,
        backend: &str,
        auto_selected: bool,
    ) -> ModelStatsReport {
        let batches = self.batches.load(Ordering::Relaxed);
        let lanes = self.lanes.load(Ordering::Relaxed);
        ModelStatsReport {
            name: name.to_string(),
            backend: backend.to_string(),
            auto_selected,
            bytes: bytes as u64,
            requests: self.requests.load(Ordering::Relaxed),
            batches,
            lanes,
            mean_occupancy: if batches == 0 {
                0.0
            } else {
                lanes as f64 / batches as f64
            },
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            p50_us: self.latency.quantile_us(0.50),
            p99_us: self.latency.quantile_us(0.99),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        for _ in 0..99 {
            h.observe_us(10); // bucket upper bound 15
        }
        h.observe_us(1_000_000); // one straggler
        assert_eq!(h.quantile_us(0.5), 15);
        assert!(h.quantile_us(0.999) >= 1_000_000);
    }

    #[test]
    fn occupancy_math() {
        let c = ModelCounters::default();
        c.requests.store(8, Ordering::Relaxed);
        c.batches.store(2, Ordering::Relaxed);
        c.lanes.store(8, Ordering::Relaxed);
        let r = c.report("m", 100, "bitplane", true);
        assert_eq!(r.mean_occupancy, 4.0);
        assert_eq!(r.bytes, 100);
        assert_eq!(r.backend, "bitplane");
        assert!(r.auto_selected);
    }
}
