//! Blocking client for the serving protocol — used by the `c2nn client`
//! CLI, the load generator, and the integration tests.

use crate::protocol::{
    write_frame, FrameReader, ModelStatsReport, Request, Response, ProtocolError,
};
use std::io::{self, Write};
use std::net::TcpStream;

/// One connection to a c2nn server. Strictly request/response: each helper
/// sends one frame and blocks for one reply.
pub struct Client {
    writer: TcpStream,
    reader: FrameReader<TcpStream>,
}

/// Client-side failures: transport errors, protocol violations, or an
/// `Error` response from the server.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server sent something undecodable.
    Protocol(ProtocolError),
    /// The server replied with an error message.
    Server(String),
    /// The server replied with a well-formed but unexpected response kind.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(e) => write!(f, "{e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Unexpected(what) => {
                write!(f, "unexpected response (wanted {what})")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl Client {
    /// Connect to `addr` (`host:port`).
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client { writer, reader: FrameReader::new(stream) })
    }

    /// Send one request and block for its response.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &req.encode())?;
        let frame = loop {
            match self.reader.read_frame() {
                Ok(Some(f)) => break f,
                Ok(None) => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection before replying",
                    )))
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => return Err(ClientError::Io(e)),
            }
        };
        let text = String::from_utf8(frame).map_err(|_| {
            ClientError::Protocol(ProtocolError { message: "response is not UTF-8".into() })
        })?;
        let resp = Response::decode(&text)?;
        if let Response::Error { message } = resp {
            return Err(ClientError::Server(message));
        }
        Ok(resp)
    }

    /// Liveness probe; returns the server's protocol version.
    pub fn ping(&mut self) -> Result<u32, ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong { version } => Ok(version),
            _ => Err(ClientError::Unexpected("pong")),
        }
    }

    /// Load a compiled-model JSON document under `name`; returns its size
    /// in bytes as accounted by the registry.
    pub fn load(&mut self, name: &str, model_json: &str) -> Result<u64, ClientError> {
        let req = Request::Load {
            name: name.to_string(),
            model_json: model_json.to_string(),
        };
        match self.request(&req)? {
            Response::Loaded { bytes, .. } => Ok(bytes),
            _ => Err(ClientError::Unexpected("loaded")),
        }
    }

    /// Run one `.stim` testbench; returns per-cycle MSB-first output
    /// strings. Convenience wrapper that discards the cycle count (it
    /// equals `outputs.len()`).
    pub fn sim(&mut self, model: &str, stim: &str) -> Result<Vec<String>, String> {
        let req = Request::Sim { model: model.to_string(), stim: stim.to_string() };
        match self.request(&req) {
            Ok(Response::SimResult { outputs, .. }) => Ok(outputs),
            Ok(_) => Err("unexpected response (wanted sim result)".to_string()),
            Err(ClientError::Server(msg)) => Err(msg),
            Err(e) => Err(e.to_string()),
        }
    }

    /// Fetch per-model serving counters.
    pub fn stats(&mut self) -> Result<Vec<ModelStatsReport>, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats { models } => Ok(models),
            _ => Err(ClientError::Unexpected("stats")),
        }
    }

    /// Ask the server to shut down.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ClientError::Unexpected("shutdown ack")),
        }
    }

    /// Flush any buffered writes (frames flush eagerly; this is a no-op
    /// safety valve for symmetry).
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}
