//! Blocking client for the serving protocol — used by the `c2nn client`
//! CLI, the load generator, and the integration tests.
//!
//! Overload is part of the protocol, so it is part of the client: typed
//! rejections ([`Response::Overloaded`], [`Response::DeadlineExceeded`],
//! [`Response::ShuttingDown`]) surface as their own [`ClientError`]
//! variants rather than opaque strings, and [`Backoff`] implements the
//! capped, jittered, deterministic exponential backoff the load generator
//! uses to retry transient failures without synchronized retry storms.

use crate::chaos::Rng;
use crate::protocol::{
    write_wire_frame, FrameReader, ModelStatsReport, ProtocolError, Request, Response,
    ServerStatsReport, SimOutputs, StimPayload, WireFormat,
};
use c2nn_core::BitTensor;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Fetch the Prometheus exposition from a server's `/metrics` endpoint
/// (spoken over the same port as the framed protocol — the server sniffs
/// `GET `). Returns the response body.
pub fn fetch_metrics(addr: &str) -> Result<String, ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: c2nn\r\nConnection: close\r\n\r\n")?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw).map_err(|_| {
        ClientError::Protocol(ProtocolError {
            message: "metrics response is not UTF-8".into(),
        })
    })?;
    let (head, body) = text.split_once("\r\n\r\n").ok_or_else(|| {
        ClientError::Protocol(ProtocolError {
            message: "malformed HTTP response".into(),
        })
    })?;
    if !head.starts_with("HTTP/1.1 200") {
        let status = head.lines().next().unwrap_or("").to_string();
        return Err(ClientError::Server(format!(
            "metrics scrape failed: {status}"
        )));
    }
    Ok(body.to_string())
}

/// One connection to a c2nn server. Strictly request/response: each helper
/// sends one frame and blocks for one reply. The wire codec is chosen at
/// connect time ([`Client::connect_wire`]); replies are decoded by their
/// own sniffed codec, so a server is free to answer in either.
pub struct Client {
    writer: TcpStream,
    reader: FrameReader<TcpStream>,
    wire: WireFormat,
}

/// Client-side failures: transport errors, protocol violations, typed
/// overload/shutdown rejections, or an `Error` response from the server.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server sent something undecodable.
    Protocol(ProtocolError),
    /// The server replied with an error message.
    Server(String),
    /// The server refused the request under load; retry after the hint.
    Overloaded {
        /// Server-suggested retry delay in milliseconds.
        retry_after_ms: u64,
    },
    /// The request's deadline expired before the server could run it.
    DeadlineExceeded,
    /// The server is draining and refused the request.
    ShuttingDown,
    /// The server replied with a well-formed but unexpected response kind.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(e) => write!(f, "{e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded (retry after {retry_after_ms}ms)")
            }
            ClientError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ClientError::ShuttingDown => write!(f, "server shutting down"),
            ClientError::Unexpected(what) => {
                write!(f, "unexpected response (wanted {what})")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// Is this failure worth retrying on a fresh connection after a
    /// backoff? Covers connection-level races (refused/reset mid-restart,
    /// server closed while we were queued) and typed `Overloaded`
    /// rejections. `ShuttingDown`, deadline misses, and real server errors
    /// are not transient: retrying them immediately is either futile or
    /// wrong.
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::Overloaded { .. } => true,
            ClientError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::ConnectionRefused
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::BrokenPipe
                    | io::ErrorKind::UnexpectedEof
                    | io::ErrorKind::TimedOut
                    | io::ErrorKind::WouldBlock
                    | io::ErrorKind::Interrupted
            ),
            _ => false,
        }
    }

    /// The server's retry hint, if this error carried one.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            ClientError::Overloaded { retry_after_ms } => {
                Some(Duration::from_millis(*retry_after_ms))
            }
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// One `stats` reply: per-model counters plus the server-wide
/// overload/health block.
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Per-model serving counters.
    pub models: Vec<ModelStatsReport>,
    /// Server-wide admission/pressure/chaos counters.
    pub server: ServerStatsReport,
}

/// Capped exponential backoff with equal jitter, driven by the same
/// deterministic RNG as the chaos harness: a load-generator run with a
/// fixed seed retries on an identical schedule every time.
#[derive(Clone, Debug)]
pub struct Backoff {
    rng: Rng,
    base: Duration,
    cap: Duration,
    attempt: u32,
}

impl Backoff {
    /// Backoff starting at `base`, doubling per attempt, never exceeding
    /// `cap`.
    pub fn new(seed: u64, base: Duration, cap: Duration) -> Backoff {
        Backoff {
            rng: Rng::new(seed),
            base: base.max(Duration::from_millis(1)),
            cap,
            attempt: 0,
        }
    }

    /// Forget accumulated attempts (call after a success).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Attempts since the last [`reset`](Self::reset).
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The next delay: `base * 2^attempt` jittered into `[d/2, d]`,
    /// floored by the server's `retry_after` hint if one was given, capped
    /// at `cap`.
    pub fn next_delay(&mut self, hint: Option<Duration>) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << self.attempt.min(16))
            .min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        let jittered = self.rng.jitter(exp);
        jittered.max(hint.unwrap_or(Duration::ZERO)).min(self.cap)
    }
}

impl Client {
    /// Connect to `addr` (`host:port`) speaking JSON (every server
    /// version understands it).
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        Client::connect_wire(addr, WireFormat::Json)
    }

    /// Connect speaking `wire`. No handshake round-trip is needed: the
    /// server sniffs the codec from the first byte of each frame.
    pub fn connect_wire(addr: &str, wire: WireFormat) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: FrameReader::new(stream),
            wire,
        })
    }

    /// The codec this client encodes requests in.
    pub fn wire(&self) -> WireFormat {
        self.wire
    }

    /// Connect speaking `wire`, retrying transient failures (connection
    /// refused/reset) up to `max_retries` times under `backoff`. Returns
    /// the client and how many retries it took.
    pub fn connect_with_retry(
        addr: &str,
        wire: WireFormat,
        backoff: &mut Backoff,
        max_retries: u32,
    ) -> Result<(Client, u32), ClientError> {
        let mut retries = 0;
        loop {
            match Client::connect_wire(addr, wire) {
                Ok(c) => return Ok((c, retries)),
                Err(e) if e.is_transient() && retries < max_retries => {
                    std::thread::sleep(backoff.next_delay(e.retry_after()));
                    retries += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Send one request and block for its response. Typed rejections
    /// (`Overloaded`, `DeadlineExceeded`) become typed errors;
    /// `ShuttingDown` passes through as a response because for a
    /// `shutdown` request it is the success ack — helpers that did not ask
    /// for it map it to [`ClientError::ShuttingDown`].
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_wire_frame(&mut self.writer, &self.wire.codec().encode_request(req))?;
        let frame = loop {
            match self.reader.read_frame() {
                Ok(Some(f)) => break f,
                Ok(None) => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection before replying",
                    )))
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => return Err(ClientError::Io(e)),
            }
        };
        match frame.decode_response()? {
            Response::Error { message } => Err(ClientError::Server(message)),
            Response::Overloaded { retry_after_ms } => {
                Err(ClientError::Overloaded { retry_after_ms })
            }
            Response::DeadlineExceeded => Err(ClientError::DeadlineExceeded),
            resp => Ok(resp),
        }
    }

    /// Liveness probe; returns the server's protocol version.
    pub fn ping(&mut self) -> Result<u32, ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong { version } => Ok(version),
            Response::ShuttingDown => Err(ClientError::ShuttingDown),
            _ => Err(ClientError::Unexpected("pong")),
        }
    }

    /// Load a compiled-model JSON document under `name`; returns its size
    /// in bytes as accounted by the registry.
    pub fn load(&mut self, name: &str, model_json: &str) -> Result<u64, ClientError> {
        let req = Request::Load {
            name: name.to_string(),
            model: model_json.as_bytes().to_vec(),
            deadline_ms: None,
        };
        match self.request(&req)? {
            Response::Loaded { bytes, .. } => Ok(bytes),
            Response::ShuttingDown => Err(ClientError::ShuttingDown),
            _ => Err(ClientError::Unexpected("loaded")),
        }
    }

    /// Run one `.stim` testbench; returns per-cycle MSB-first output
    /// strings. Convenience wrapper over [`sim_with_deadline`](Self::sim_with_deadline)
    /// with no deadline.
    pub fn sim(&mut self, model: &str, stim: &str) -> Result<Vec<String>, ClientError> {
        self.sim_with_deadline(model, stim, None)
    }

    /// Run one `.stim` testbench with an optional end-to-end deadline in
    /// milliseconds; a request the server cannot start in time comes back
    /// as [`ClientError::DeadlineExceeded`] instead of a late answer.
    /// The stimulus rides as text under either codec (the server parses
    /// it, so `.stim` repeat syntax keeps its exact semantics); use
    /// [`sim_packed`](Self::sim_packed) for the zero-parse hot path.
    pub fn sim_with_deadline(
        &mut self,
        model: &str,
        stim: &str,
        deadline_ms: Option<u64>,
    ) -> Result<Vec<String>, ClientError> {
        let req = Request::Sim {
            model: model.to_string(),
            stim: StimPayload::Text(stim.to_string()),
            deadline_ms,
        };
        match self.request(&req)? {
            Response::SimResult { outputs, .. } => Ok(outputs.to_strings()),
            Response::ShuttingDown => Err(ClientError::ShuttingDown),
            _ => Err(ClientError::Unexpected("sim result")),
        }
    }

    /// Run one testbench that is already packed as feature-major bit
    /// planes (features = primary inputs, batch = cycles); the reply comes
    /// back packed the same way (features = primary outputs). Under the
    /// binary codec, neither direction is parsed per lane anywhere —
    /// socket bytes are the simulator's working representation.
    pub fn sim_packed(&mut self, model: &str, stim: &BitTensor) -> Result<BitTensor, ClientError> {
        self.sim_packed_with_deadline(model, stim, None)
    }

    /// [`sim_packed`](Self::sim_packed) with an optional end-to-end
    /// deadline in milliseconds.
    pub fn sim_packed_with_deadline(
        &mut self,
        model: &str,
        stim: &BitTensor,
        deadline_ms: Option<u64>,
    ) -> Result<BitTensor, ClientError> {
        let req = Request::Sim {
            model: model.to_string(),
            stim: StimPayload::Packed(stim.clone()),
            deadline_ms,
        };
        match self.request(&req)? {
            Response::SimResult { outputs, .. } => Ok(match outputs {
                SimOutputs::Packed(planes) => planes,
                // a server replying in text form (never the case for the
                // packed dataflow today, but legal on the wire) still
                // round-trips losslessly
                SimOutputs::Text(lines) => {
                    let features = lines.first().map_or(0, |l| l.len());
                    let mut planes = BitTensor::zeros(features, lines.len());
                    for (c, line) in lines.iter().enumerate() {
                        for (f, ch) in line.chars().rev().enumerate() {
                            if ch == '1' {
                                planes.set_bit(f, c, true);
                            }
                        }
                    }
                    planes
                }
            }),
            Response::ShuttingDown => Err(ClientError::ShuttingDown),
            _ => Err(ClientError::Unexpected("sim result")),
        }
    }

    /// Fetch per-model serving counters plus the server-wide overload
    /// block.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats { models, server } => Ok(StatsSnapshot { models, server }),
            Response::ShuttingDown => Err(ClientError::ShuttingDown),
            _ => Err(ClientError::Unexpected("stats")),
        }
    }

    /// Ask the server to shut down.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ClientError::Unexpected("shutdown ack")),
        }
    }

    /// Flush any buffered writes (frames flush eagerly; this is a no-op
    /// safety valve for symmetry).
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_respects_hints() {
        let mut b = Backoff::new(7, Duration::from_millis(10), Duration::from_millis(200));
        let d1 = b.next_delay(None);
        assert!(
            d1 >= Duration::from_millis(5) && d1 <= Duration::from_millis(10),
            "{d1:?}"
        );
        for _ in 0..10 {
            assert!(b.next_delay(None) <= Duration::from_millis(200), "capped");
        }
        // a server hint floors the delay
        b.reset();
        let hinted = b.next_delay(Some(Duration::from_millis(50)));
        assert!(hinted >= Duration::from_millis(50), "{hinted:?}");
        assert!(hinted <= Duration::from_millis(200));
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let mut a = Backoff::new(3, Duration::from_millis(10), Duration::from_secs(1));
        let mut b = Backoff::new(3, Duration::from_millis(10), Duration::from_secs(1));
        for _ in 0..20 {
            assert_eq!(a.next_delay(None), b.next_delay(None));
        }
    }

    #[test]
    fn transient_classification() {
        assert!(ClientError::Overloaded { retry_after_ms: 5 }.is_transient());
        assert!(
            ClientError::Io(io::Error::new(io::ErrorKind::ConnectionRefused, "refused"))
                .is_transient()
        );
        assert!(!ClientError::ShuttingDown.is_transient());
        assert!(!ClientError::DeadlineExceeded.is_transient());
        assert!(!ClientError::Server("boom".into()).is_transient());
        assert_eq!(
            ClientError::Overloaded { retry_after_ms: 7 }.retry_after(),
            Some(Duration::from_millis(7))
        );
    }
}
