//! Micro-batch coalescing: many clients' testbenches, one forward pass.
//!
//! Each served model owns one batcher thread. Incoming `sim` requests are
//! queued; the batcher sleeps until the first job arrives, then keeps
//! admitting jobs until either `max_batch` lanes have accumulated or the
//! `max_wait` deadline (measured from the first queued job) expires —
//! classic dynamic batching, with the batch then executed as one
//! HAL-runner pass per cycle over all lanes. Per-lane outputs scatter
//! back through each job's reply channel; a lane whose client vanished
//! mid-batch just has its reply dropped on the floor — the other lanes are
//! independent columns of the forward pass and are unaffected.
//!
//! Which execution engine steps the batch is decided *before* the batcher
//! thread exists: the registry resolves the configured
//! [`Choice`](c2nn_hal::Choice) against the [`c2nn_hal::BackendRegistry`]
//! at install time, producing an admitted [`Plan`](c2nn_hal::Plan) (with
//! typed rejection for models a backend cannot legalize). The batcher just
//! manufactures runners from its plan — it never knows which backend it
//! is running.
//!
//! The deadline semantics are deliberately *first-job anchored*: the first
//! request in a batch waits at most `max_wait` beyond its arrival, so a
//! lone client's latency floor is `max_wait` (tune it near zero for
//! latency, milliseconds for throughput), while under load the queue
//! usually fills `max_batch` lanes long before the deadline.
//!
//! ## Overload behavior
//!
//! * Under [`Pressure::Elevated`] the coalescing window widens
//!   ([`PRESSURE_WAIT_FACTOR`]×): per-request latency is already shot, so
//!   the scheduler buys goodput with bigger batches instead.
//! * A job carrying a client deadline that expires before batch dispatch
//!   is shed with a typed [`SimFailure::DeadlineExceeded`] — its lane never
//!   occupies the forward pass.
//! * A panic during the batched forward pass (e.g. a pool worker dying) is
//!   caught: every lane in the batch gets a typed failure, the runner is
//!   rebuilt from the plan, and the batcher thread survives to serve the
//!   next batch — the pool respawns its worker on the next job
//!   ([`c2nn_tensor::Pool`] self-healing).
//! * An armed [`Chaos`] schedule injects scheduler stalls and worker
//!   panics here, exercising exactly these paths under a fixed seed.

use crate::admission::{Admission, Pressure};
use crate::chaos::Chaos;
use crate::protocol::ModelStatsReport;
use crate::stats::ModelCounters;
use c2nn_core::{BitTensor, CompiledNn, Session, Stimulus};
use c2nn_hal::{BackendRegistry, Choice, DeviceCalibration, Plan, Runner, Selection};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How much the coalescing window widens at [`Pressure::Elevated`] and
/// above: latency is already dominated by queueing, so trade it for batch
/// occupancy (= goodput).
pub const PRESSURE_WAIT_FACTOR: u32 = 4;

/// Tuning for one model's micro-batcher.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Maximum lanes coalesced into one simulator run.
    pub max_batch: usize,
    /// How long the first queued request may wait for companions.
    pub max_wait: Duration,
    /// Execution backend, resolved against the [`BackendRegistry`] at
    /// install time. [`Choice::Auto`] lets the calibrated cost model pick
    /// per model; [`Choice::Named`] pins one backend and turns its
    /// admission refusal into a typed install error.
    pub backend: Choice,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(2),
            backend: Choice::Auto,
        }
    }
}

/// One testbench's stimulus as submitted: parsed per-cycle lane vectors
/// (the JSON wire path) or pre-packed bit planes straight off the binary
/// wire (`features` = primary inputs, `batch` = cycles). The reply comes
/// back in the matching [`SimOutput`] shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StimData {
    /// `cycles[c][f]` = primary input `f` at cycle `c`.
    Lanes(Stimulus),
    /// Feature-major bit planes, bit `c % 64` of word `f * W + c / 64`.
    Packed(BitTensor),
}

impl StimData {
    /// Number of stimulus cycles.
    pub fn num_cycles(&self) -> usize {
        match self {
            StimData::Lanes(s) => s.cycles.len(),
            StimData::Packed(bt) => bt.batch(),
        }
    }
}

impl From<Stimulus> for StimData {
    fn from(s: Stimulus) -> Self {
        StimData::Lanes(s)
    }
}

impl From<BitTensor> for StimData {
    fn from(bt: BitTensor) -> Self {
        StimData::Packed(bt)
    }
}

/// One testbench's results, in the shape its stimulus arrived in:
/// per-cycle primary-output bit vectors for [`StimData::Lanes`] jobs,
/// packed bit planes (`features` = primary outputs, `batch` = cycles,
/// ragged tails zero) for [`StimData::Packed`] jobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimOutput {
    /// `outputs[c][j]` = primary output `j` at cycle `c` (LSB-first).
    Lanes(Vec<Vec<bool>>),
    /// Feature-major output bit planes.
    Packed(BitTensor),
}

impl SimOutput {
    /// Number of simulated cycles.
    pub fn num_cycles(&self) -> usize {
        match self {
            SimOutput::Lanes(v) => v.len(),
            SimOutput::Packed(bt) => bt.batch(),
        }
    }

    /// Per-cycle output bit vectors, converting packed planes if needed.
    pub fn lanes(&self) -> Vec<Vec<bool>> {
        match self {
            SimOutput::Lanes(v) => v.clone(),
            SimOutput::Packed(bt) => bt.to_lanes(),
        }
    }
}

/// Why a submitted job did not produce outputs. Every variant maps to a
/// typed wire reply — overload and failure are contracts, not strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimFailure {
    /// The job's client deadline passed before batch dispatch; the lane
    /// was shed without simulating.
    DeadlineExceeded,
    /// The server is draining; the job was not executed.
    ShuttingDown,
    /// The batched simulation failed (simulator error or a worker panic).
    Failed(String),
}

impl std::fmt::Display for SimFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimFailure::DeadlineExceeded => write!(f, "deadline exceeded before dispatch"),
            SimFailure::ShuttingDown => write!(f, "server shutting down"),
            SimFailure::Failed(msg) => write!(f, "batched simulation failed: {msg}"),
        }
    }
}

/// Where a finished job's result goes. The threaded server blocks on a
/// channel; the epoll event loop cannot block, so it hands in a hook that
/// enqueues the result on its completion queue and wakes the loop.
enum ReplyTo {
    Channel(Sender<Result<SimOutput, SimFailure>>),
    Hook(Box<dyn FnOnce(Result<SimOutput, SimFailure>) + Send>),
}

impl ReplyTo {
    /// Deliver the result. Replies to vanished clients fail silently.
    fn send(self, result: Result<SimOutput, SimFailure>) {
        match self {
            ReplyTo::Channel(tx) => {
                let _ = tx.send(result);
            }
            ReplyTo::Hook(hook) => hook(result),
        }
    }
}

struct SimJob {
    stim: StimData,
    reply: ReplyTo,
    enqueued: Instant,
    /// Absolute client deadline; `None` means "whenever".
    deadline: Option<Instant>,
}

/// A model admitted to the registry: the validated network, the backend
/// selection that admitted it, its byte accounting, its counters, and the
/// sending side of its batcher queue. Dropping the last
/// `Arc<ServedModel>` closes the queue and the batcher thread exits.
pub struct ServedModel {
    /// Registry key.
    pub name: String,
    /// The compiled, validated network.
    pub nn: Arc<CompiledNn<f32>>,
    /// Name of the backend executing this model's batches.
    pub backend: String,
    /// Whether the cost model picked the backend (`--backend auto`) or
    /// the operator named it.
    pub auto_selected: bool,
    /// The cost model's predicted lane-cycles/s at `max_batch`, when the
    /// selection had a calibration entry for the backend.
    pub predicted_lane_cps: Option<f64>,
    /// Size counted against the registry byte budget.
    pub bytes: usize,
    /// Serving counters (shared with the batcher thread).
    pub stats: Arc<ModelCounters>,
    queue: Sender<SimJob>,
}

impl std::fmt::Debug for ServedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServedModel")
            .field("name", &self.name)
            .field("backend", &self.backend)
            .field("bytes", &self.bytes)
            .finish_non_exhaustive()
    }
}

impl ServedModel {
    /// Wrap an already-resolved backend [`Selection`] and spawn the
    /// model's batcher thread. `admission` feeds the pressure signal that
    /// widens the coalescing window; `chaos`, if armed, injects stalls
    /// and worker panics into this batcher.
    pub fn spawn(
        name: &str,
        selection: Selection,
        cfg: BatchConfig,
        admission: Arc<Admission>,
        chaos: Option<Arc<Chaos>>,
    ) -> Arc<ServedModel> {
        let Selection {
            backend,
            auto,
            plan,
            predicted_lane_cps,
            ..
        } = selection;
        let nn = Arc::clone(plan.nn());
        let bytes = nn.memory_bytes();
        let stats = Arc::new(ModelCounters::default());
        let (tx, rx) = mpsc::channel::<SimJob>();
        {
            let plan = Arc::clone(&plan);
            let stats = Arc::clone(&stats);
            let thread_name = format!("c2nn-batch-{name}");
            std::thread::Builder::new()
                .name(thread_name)
                .spawn(move || batch_loop(rx, plan, &stats, &cfg, &admission, chaos.as_deref()))
                .expect("spawn batcher thread");
        }
        Arc::new(ServedModel {
            name: name.to_string(),
            nn,
            backend,
            auto_selected: auto,
            predicted_lane_cps,
            bytes,
            stats,
            queue: tx,
        })
    }

    /// Resolve `cfg.backend` against the global [`BackendRegistry`] with
    /// the given calibration and spawn. This is the install-time gate: a
    /// model no backend can run is refused here with a typed reason, not
    /// discovered by a batcher thread later.
    pub fn spawn_selected(
        name: &str,
        nn: CompiledNn<f32>,
        cfg: BatchConfig,
        calibration: &DeviceCalibration,
        admission: Arc<Admission>,
        chaos: Option<Arc<Chaos>>,
    ) -> Result<Arc<ServedModel>, c2nn_hal::SelectError> {
        let nn = Arc::new(nn);
        let selection =
            BackendRegistry::global().select(&nn, &cfg.backend, calibration, cfg.max_batch)?;
        Ok(ServedModel::spawn(name, selection, cfg, admission, chaos))
    }

    /// [`ServedModel::spawn_selected`] with built-in default calibration,
    /// no pressure coupling, and no chaos — embedding and test
    /// convenience. Panics if no backend admits the model (use
    /// [`ServedModel::spawn_selected`] for typed errors).
    pub fn spawn_standalone(name: &str, nn: CompiledNn<f32>, cfg: BatchConfig) -> Arc<ServedModel> {
        let cal = DeviceCalibration::default_host(c2nn_tensor::Pool::global().threads());
        ServedModel::spawn_selected(name, nn, cfg, &cal, Admission::unbounded(), None)
            .expect("backend selection")
    }

    /// Snapshot this model's counters into the wire-format report.
    pub fn report(&self) -> ModelStatsReport {
        self.stats
            .report(&self.name, self.bytes, &self.backend, self.auto_selected)
    }

    /// Enqueue one testbench (already width-checked against
    /// `nn.num_primary_inputs`) and return the channel its result will
    /// arrive on. The caller blocks on `recv()` for as long as it likes —
    /// or drops the receiver to abandon the request. A `deadline` in the
    /// past is legal: the scheduler sheds the lane with a typed reply.
    pub fn submit(
        &self,
        stim: impl Into<StimData>,
        deadline: Option<Instant>,
    ) -> Receiver<Result<SimOutput, SimFailure>> {
        let (rtx, rrx) = mpsc::channel();
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.stats.queue_depth.fetch_add(1, Ordering::Relaxed);
        let job = SimJob {
            stim: stim.into(),
            reply: ReplyTo::Channel(rtx),
            enqueued: Instant::now(),
            deadline,
        };
        if self.queue.send(job).is_err() {
            // batcher thread died (can only happen at teardown); the caller
            // sees a disconnected receiver
            self.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
        }
        rrx
    }

    /// Enqueue one testbench with a completion hook instead of a channel:
    /// the hook runs on the batcher thread when the result is ready. The
    /// epoll event loop uses this to get woken instead of blocking a
    /// thread per request — the hook must therefore never block (the event
    /// loop's hook pushes onto a queue and writes one wake byte).
    ///
    /// The hook is guaranteed to run exactly once: a batcher that has
    /// already exited (teardown) fails the job inline with
    /// [`SimFailure::ShuttingDown`].
    pub fn submit_with(
        &self,
        stim: impl Into<StimData>,
        deadline: Option<Instant>,
        on_reply: Box<dyn FnOnce(Result<SimOutput, SimFailure>) + Send>,
    ) {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.stats.queue_depth.fetch_add(1, Ordering::Relaxed);
        let job = SimJob {
            stim: stim.into(),
            reply: ReplyTo::Hook(on_reply),
            enqueued: Instant::now(),
            deadline,
        };
        if let Err(mpsc::SendError(job)) = self.queue.send(job) {
            self.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
            job.reply.send(Err(SimFailure::ShuttingDown));
        }
    }
}

fn batch_loop(
    rx: Receiver<SimJob>,
    plan: Arc<dyn Plan>,
    stats: &ModelCounters,
    cfg: &BatchConfig,
    admission: &Admission,
    chaos: Option<&Chaos>,
) {
    let max_batch = cfg.max_batch.max(1);
    let mut runner = plan.runner();
    while let Ok(first) = rx.recv() {
        // graceful degradation: past half the in-flight budget, widen the
        // coalescing window — requests are already queueing, so spend the
        // wait on occupancy instead of dispatching slivers
        let wait = if admission.pressure() >= Pressure::Elevated {
            cfg.max_wait * PRESSURE_WAIT_FACTOR
        } else {
            cfg.max_wait
        };
        let deadline = first.enqueued + wait;
        let mut jobs = vec![first];
        while jobs.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => jobs.push(job),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        if let Some(stall) = chaos.and_then(Chaos::take_stall) {
            std::thread::sleep(stall); // injected scheduler stall
        }
        // shed lanes whose client deadline passed while they queued — a
        // reply nobody can use anymore must not occupy a forward-pass lane
        let now = Instant::now();
        let (live, expired): (Vec<SimJob>, Vec<SimJob>) = jobs
            .into_iter()
            .partition(|j| j.deadline.is_none_or(|d| d > now));
        for job in expired {
            stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            finish_job(stats, job, Err(SimFailure::DeadlineExceeded));
        }
        if live.is_empty() {
            continue;
        }
        let poisoned = run_coalesced(runner.as_mut(), plan.nn(), stats, live, chaos);
        if poisoned {
            // a panic mid-pass may have left the runner's scratch state
            // inconsistent; rebuild it from the plan (cheap relative to a
            // batch)
            runner = plan.runner();
        }
    }
}

/// Send one job's reply and settle its counters. Replies to vanished
/// clients fail silently.
fn finish_job(stats: &ModelCounters, job: SimJob, reply: Result<SimOutput, SimFailure>) {
    let us = job.enqueued.elapsed().as_micros().min(u64::MAX as u128) as u64;
    stats.latency.observe_us(us);
    stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
    job.reply.send(reply);
}

/// Per-lane result accumulator: the reply shape follows the stimulus
/// shape, so packed jobs never materialize per-cycle `Vec<bool>`s.
enum Acc {
    Lanes(Vec<Vec<bool>>),
    Packed(BitTensor),
}

/// Execute one coalesced batch and scatter results. Every job gets a reply
/// (success or typed failure). Returns `true` if a panic poisoned the
/// runner and it must be rebuilt.
///
/// The batch's dataflow is packed end to end: each cycle's inputs are
/// assembled into one reused `primary_inputs × lanes` [`BitTensor`] (bit
/// transfers from packed stimuli, bit sets from parsed lanes) and stepped
/// through [`Runner::step_planes`] — the bit-plane backend consumes the
/// planes word-wise with no `Vec<bool>` in between, while lane backends
/// fall back to the default unpack inside their `step_planes`.
fn run_coalesced(
    runner: &mut (dyn Runner + '_),
    nn: &CompiledNn<f32>,
    stats: &ModelCounters,
    jobs: Vec<SimJob>,
    chaos: Option<&Chaos>,
) -> bool {
    let lanes = jobs.len();
    stats.batches.fetch_add(1, Ordering::Relaxed);
    stats.lanes.fetch_add(lanes as u64, Ordering::Relaxed);

    let pi = nn.num_primary_inputs;
    let po = nn.num_primary_outputs;
    let max_cycles = jobs.iter().map(|j| j.stim.num_cycles()).max().unwrap_or(0);
    let mut sessions: Vec<Session<f32>> = jobs.iter().map(|_| Session::new(nn)).collect();
    let mut results: Vec<Acc> = jobs
        .iter()
        .map(|j| match &j.stim {
            StimData::Lanes(_) => Acc::Lanes(Vec::new()),
            StimData::Packed(bt) => Acc::Packed(BitTensor::zeros(po, bt.batch())),
        })
        .collect();
    let mut failure: Option<SimFailure> = None;
    let mut poisoned = false;
    let inject_panic = chaos.is_some_and(Chaos::take_worker_panic);
    // one reused per-cycle input tensor; short testbenches idle with zero
    // inputs until the batch finishes
    let mut x = BitTensor::zeros(pi, lanes);
    for c in 0..max_cycles {
        x.data_mut().fill(0);
        for (l, job) in jobs.iter().enumerate() {
            match &job.stim {
                StimData::Lanes(stim) => {
                    if let Some(cyc) = stim.cycles.get(c) {
                        for (f, &bit) in cyc.iter().enumerate().take(pi) {
                            if bit {
                                x.set_bit(f, l, true);
                            }
                        }
                    }
                }
                StimData::Packed(bt) => {
                    if c < bt.batch() {
                        for f in 0..pi.min(bt.features()) {
                            if bt.get_bit(f, c) {
                                x.set_bit(f, l, true);
                            }
                        }
                    }
                }
            }
        }
        // the forward pass may panic (a pool worker dying, injected or
        // real); contain it to this batch — the batcher must outlive any
        // single batch's failure
        let step = catch_unwind(AssertUnwindSafe(|| {
            if c == 0 && inject_panic {
                c2nn_tensor::Pool::global().inject_worker_panic();
            }
            runner.step_planes(&mut sessions, &x)
        }));
        match step {
            Ok(Ok(y)) => {
                for (l, job) in jobs.iter().enumerate() {
                    if c < job.stim.num_cycles() {
                        match &mut results[l] {
                            Acc::Lanes(v) => {
                                v.push((0..po).map(|f| y.get_bit(f, l)).collect());
                            }
                            Acc::Packed(out) => {
                                for f in 0..po {
                                    if y.get_bit(f, l) {
                                        out.set_bit(f, c, true);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            Ok(Err(e)) => {
                failure = Some(SimFailure::Failed(e.to_string()));
                break;
            }
            Err(payload) => {
                let what = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "worker panicked".to_string());
                failure = Some(SimFailure::Failed(format!(
                    "forward pass panicked at cycle {c}: {what} (pool self-heals; retry)"
                )));
                poisoned = true;
                break;
            }
        }
    }
    for (job, result) in jobs.into_iter().zip(results) {
        let reply = match &failure {
            Some(f) => Err(f.clone()),
            None => Ok(match result {
                Acc::Lanes(v) => SimOutput::Lanes(v),
                Acc::Packed(bt) => SimOutput::Packed(bt),
            }),
        };
        finish_job(stats, job, reply);
    }
    poisoned
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosConfig;
    use c2nn_circuits::generators::counter;
    use c2nn_core::{compile, parse_stim, CompileOptions};

    fn counter_nn() -> CompiledNn<f32> {
        compile(&counter(4), CompileOptions::with_l(4)).unwrap()
    }

    fn named(backend: &str) -> Choice {
        Choice::Named(backend.to_string())
    }

    /// Decode per-cycle counter values from a reply, whatever its shape.
    fn counter_vals(out: &SimOutput) -> Vec<u32> {
        out.lanes()
            .iter()
            .map(|c| c.iter().enumerate().map(|(i, &b)| (b as u32) << i).sum())
            .collect()
    }

    #[test]
    fn coalesces_waiting_jobs_into_one_batch() {
        let nn = counter_nn();
        let model = ServedModel::spawn_standalone(
            "ctr",
            nn,
            BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(200),
                backend: named("scalar"),
            },
        );
        // submit 4 jobs quickly; the 200ms deadline coalesces them
        let stims = ["1 x3\n", "1 x5\n", "0 x2\n", "1 x1\n"];
        let rxs: Vec<_> = stims
            .iter()
            .map(|s| model.submit(parse_stim(s, 1).unwrap(), None))
            .collect();
        let outs: Vec<SimOutput> = rxs
            .into_iter()
            .map(|rx| rx.recv().unwrap().unwrap())
            .collect();
        // lane 0: counts 0,1,2 over 3 cycles
        assert_eq!(counter_vals(&outs[0]), vec![0, 1, 2]);
        assert_eq!(outs[1].num_cycles(), 5);
        assert_eq!(outs[2].num_cycles(), 2);
        assert_eq!(outs[3].num_cycles(), 1);
        let report = model.report();
        assert_eq!(report.requests, 4);
        assert!(
            report.mean_occupancy > 1.0,
            "expected coalescing, got {report:?}"
        );
        assert_eq!(report.queue_depth, 0);
        assert_eq!(report.backend, "scalar");
        assert!(!report.auto_selected);
    }

    #[test]
    fn auto_selection_picks_a_backend_and_labels_stats() {
        let nn = counter_nn();
        let model = ServedModel::spawn_standalone(
            "ctr",
            nn,
            BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(50),
                backend: Choice::Auto,
            },
        );
        assert!(
            !model.backend.is_empty() && model.auto_selected,
            "auto selection must record its winner"
        );
        assert!(model.predicted_lane_cps.is_some());
        let rx = model.submit(parse_stim("1 x3\n", 1).unwrap(), None);
        assert_eq!(rx.recv().unwrap().unwrap().num_cycles(), 3);
        let report = model.report();
        assert_eq!(report.backend, model.backend);
        assert!(report.auto_selected);
    }

    #[test]
    fn dropped_receiver_does_not_poison_the_batch() {
        let nn = counter_nn();
        let model = ServedModel::spawn_standalone(
            "ctr",
            nn,
            BatchConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(100),
                backend: named("scalar"),
            },
        );
        let keep = model.submit(parse_stim("1 x4\n", 1).unwrap(), None);
        let drop_me = model.submit(parse_stim("1 x6\n", 1).unwrap(), None);
        drop(drop_me); // client disconnects mid-batch
        let out = keep.recv().unwrap().unwrap();
        assert_eq!(out.num_cycles(), 4);
        assert_eq!(
            counter_vals(&out),
            vec![0, 1, 2, 3],
            "surviving lane unaffected by the dropout"
        );
    }

    #[test]
    fn lone_job_runs_after_deadline() {
        let nn = counter_nn();
        let model = ServedModel::spawn_standalone(
            "ctr",
            nn,
            BatchConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(1),
                backend: named("scalar"),
            },
        );
        let rx = model.submit(parse_stim("1 x2\n", 1).unwrap(), None);
        let out = rx.recv().unwrap().unwrap();
        assert_eq!(out.num_cycles(), 2);
        let report = model.report();
        assert_eq!((report.batches, report.lanes), (1, 1));
    }

    #[test]
    fn expired_deadline_is_shed_typed_and_costs_no_lane() {
        let nn = counter_nn();
        let model = ServedModel::spawn_standalone(
            "ctr",
            nn,
            BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(50),
                backend: named("scalar"),
            },
        );
        // already expired on arrival: must shed, not simulate
        let dead = model.submit(
            parse_stim("1 x4\n", 1).unwrap(),
            Some(Instant::now() - Duration::from_millis(1)),
        );
        // generous deadline: must run normally in the same batch window
        let live = model.submit(
            parse_stim("1 x3\n", 1).unwrap(),
            Some(Instant::now() + Duration::from_secs(30)),
        );
        assert_eq!(dead.recv().unwrap(), Err(SimFailure::DeadlineExceeded));
        assert_eq!(live.recv().unwrap().unwrap().num_cycles(), 3);
        let report = model.report();
        assert_eq!(report.deadline_exceeded, 1);
        assert_eq!(report.lanes, 1, "shed lane never reached the forward pass");
        assert_eq!(report.queue_depth, 0);
    }

    #[test]
    fn all_backends_serve_bit_exact_batches() {
        // same compiled model, every registered backend, identical stimuli
        // → replies must be bit-identical, lane for lane, cycle for cycle
        let nn = counter_nn();
        let stims = ["1 x5\n", "0 x3\n", "1 x7\n", "1 x2\n"];
        let mut replies: Vec<Vec<SimOutput>> = Vec::new();
        let backends = BackendRegistry::global().names();
        for backend in &backends {
            let model = ServedModel::spawn_standalone(
                "ctr",
                nn.clone(),
                BatchConfig {
                    max_batch: 8,
                    max_wait: Duration::from_millis(200),
                    backend: named(backend),
                },
            );
            assert_eq!(model.backend, *backend);
            let rxs: Vec<_> = stims
                .iter()
                .map(|s| model.submit(parse_stim(s, 1).unwrap(), None))
                .collect();
            replies.push(
                rxs.into_iter()
                    .map(|rx| rx.recv().unwrap().unwrap())
                    .collect(),
            );
        }
        for (i, r) in replies.iter().enumerate().skip(1) {
            assert_eq!(
                replies[0], *r,
                "backends {} and {} disagree over the wire",
                backends[0], backends[i]
            );
        }
        // sanity: the counter actually counted
        assert_eq!(counter_vals(&replies[0][0]), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn packed_stimuli_get_packed_replies_bit_exact_with_lanes() {
        let nn = counter_nn();
        let model = ServedModel::spawn_standalone(
            "ctr",
            nn,
            BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(200),
                backend: named("bitplane"),
            },
        );
        let stim = parse_stim("1 x5\n", 1).unwrap();
        let packed = BitTensor::from_lanes(&stim.cycles);
        let rx_lanes = model.submit(stim, None);
        let rx_packed = model.submit(packed, None);
        let out_lanes = rx_lanes.recv().unwrap().unwrap();
        let out_packed = rx_packed.recv().unwrap().unwrap();
        assert!(
            matches!(out_lanes, SimOutput::Lanes(_)),
            "lane stimuli reply in lanes"
        );
        match &out_packed {
            SimOutput::Packed(bt) => {
                assert_eq!((bt.features(), bt.batch()), (4, 5));
                // canonical: ragged tail bits are zero
                let mut canon = bt.clone();
                canon.mask_tails();
                assert_eq!(&canon, bt);
            }
            other => panic!("packed stimuli reply packed, got {other:?}"),
        }
        assert_eq!(
            out_lanes.lanes(),
            out_packed.lanes(),
            "both shapes are bit-exact"
        );
        assert_eq!(counter_vals(&out_packed), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bitplane_batcher_survives_injected_panic() {
        // the poisoned-runner rebuild path must restore a runner from the
        // *same plan* — a bitplane batcher must not silently fall back to
        // CSR semantics
        let nn = counter_nn();
        let chaos = Chaos::new(ChaosConfig::parse("worker_panic=1,worker_panic_budget=1").unwrap());
        let cal = DeviceCalibration::default_host(c2nn_tensor::Pool::global().threads());
        let model = ServedModel::spawn_selected(
            "ctr",
            nn,
            BatchConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(10),
                backend: named("bitplane"),
            },
            &cal,
            Admission::unbounded(),
            Some(Arc::clone(&chaos)),
        )
        .unwrap();
        let rx = model.submit(parse_stim("1 x4\n", 1).unwrap(), None);
        assert!(
            matches!(rx.recv().unwrap(), Err(SimFailure::Failed(_))),
            "first batch rides the injected panic"
        );
        let rx = model.submit(parse_stim("1 x3\n", 1).unwrap(), None);
        let out = rx.recv().unwrap().unwrap();
        assert_eq!(
            counter_vals(&out),
            vec![0, 1, 2],
            "bitplane batcher recovered bit-exactly"
        );
    }

    #[test]
    fn injected_worker_panic_fails_batch_typed_and_batcher_survives() {
        let nn = counter_nn();
        let chaos = Chaos::new(ChaosConfig::parse("worker_panic=1,worker_panic_budget=1").unwrap());
        let cal = DeviceCalibration::default_host(c2nn_tensor::Pool::global().threads());
        let model = ServedModel::spawn_selected(
            "ctr",
            nn,
            BatchConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(10),
                // pooled-csr so the injection hits the real pool path
                backend: named("pooled-csr"),
            },
            &cal,
            Admission::unbounded(),
            Some(Arc::clone(&chaos)),
        )
        .unwrap();
        let rx = model.submit(parse_stim("1 x4\n", 1).unwrap(), None);
        match rx.recv().unwrap() {
            Err(SimFailure::Failed(msg)) => {
                assert!(msg.contains("panicked"), "typed panic failure, got: {msg}")
            }
            other => panic!("expected typed failure, got {other:?}"),
        }
        assert_eq!(chaos.injected_panics(), 1);
        // budget exhausted → the very next batch succeeds bit-exactly
        let rx = model.submit(parse_stim("1 x3\n", 1).unwrap(), None);
        let out = rx.recv().unwrap().unwrap();
        assert_eq!(
            counter_vals(&out),
            vec![0, 1, 2],
            "batcher and pool recovered"
        );
    }
}
