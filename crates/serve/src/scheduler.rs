//! Micro-batch coalescing: many clients' testbenches, one forward pass.
//!
//! Each served model owns one batcher thread. Incoming `sim` requests are
//! queued; the batcher sleeps until the first job arrives, then keeps
//! admitting jobs until either `max_batch` lanes have accumulated or the
//! `max_wait` deadline (measured from the first queued job) expires —
//! classic dynamic batching, with the batch then executed as one
//! [`SessionRunner`] run per cycle over all lanes. Per-lane outputs scatter
//! back through each job's reply channel; a lane whose client vanished
//! mid-batch just has its reply dropped on the floor — the other lanes are
//! independent columns of the forward pass and are unaffected.
//!
//! The deadline semantics are deliberately *first-job anchored*: the first
//! request in a batch waits at most `max_wait` beyond its arrival, so a
//! lone client's latency floor is `max_wait` (tune it near zero for
//! latency, milliseconds for throughput), while under load the queue
//! usually fills `max_batch` lanes long before the deadline.

use crate::stats::ModelCounters;
use c2nn_core::{CompiledNn, Session, SessionRunner, Stimulus};
use c2nn_tensor::Device;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning for one model's micro-batcher.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Maximum lanes coalesced into one simulator run.
    pub max_batch: usize,
    /// How long the first queued request may wait for companions.
    pub max_wait: Duration,
    /// Execution device for the batched forward passes.
    pub device: Device,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(2),
            device: Device::Parallel,
        }
    }
}

/// One testbench's results: per-cycle primary-output bit vectors
/// (LSB-first, one entry per stimulus cycle).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimOutput {
    /// `outputs[c][j]` = primary output `j` at cycle `c`.
    pub outputs: Vec<Vec<bool>>,
}

struct SimJob {
    stim: Stimulus,
    reply: Sender<Result<SimOutput, String>>,
    enqueued: Instant,
}

/// A model admitted to the registry: the validated network, its byte
/// accounting, its counters, and the sending side of its batcher queue.
/// Dropping the last `Arc<ServedModel>` closes the queue and the batcher
/// thread exits.
pub struct ServedModel {
    /// Registry key.
    pub name: String,
    /// The compiled, validated network.
    pub nn: Arc<CompiledNn<f32>>,
    /// Size counted against the registry byte budget.
    pub bytes: usize,
    /// Serving counters (shared with the batcher thread).
    pub stats: Arc<ModelCounters>,
    queue: Sender<SimJob>,
}

impl std::fmt::Debug for ServedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServedModel")
            .field("name", &self.name)
            .field("bytes", &self.bytes)
            .finish_non_exhaustive()
    }
}

impl ServedModel {
    /// Validate nothing (the registry already did), wrap `nn`, and spawn
    /// the model's batcher thread.
    pub fn spawn(name: &str, nn: CompiledNn<f32>, cfg: BatchConfig) -> Arc<ServedModel> {
        let bytes = nn.memory_bytes();
        let nn = Arc::new(nn);
        let stats = Arc::new(ModelCounters::default());
        let (tx, rx) = mpsc::channel::<SimJob>();
        {
            let nn = Arc::clone(&nn);
            let stats = Arc::clone(&stats);
            let thread_name = format!("c2nn-batch-{name}");
            std::thread::Builder::new()
                .name(thread_name)
                .spawn(move || batch_loop(rx, &nn, &stats, &cfg))
                .expect("spawn batcher thread");
        }
        Arc::new(ServedModel {
            name: name.to_string(),
            nn,
            bytes,
            stats,
            queue: tx,
        })
    }

    /// Enqueue one testbench (already width-checked against
    /// `nn.num_primary_inputs`) and return the channel its result will
    /// arrive on. The caller blocks on `recv()` for as long as it likes —
    /// or drops the receiver to abandon the request.
    pub fn submit(&self, stim: Stimulus) -> Receiver<Result<SimOutput, String>> {
        let (rtx, rrx) = mpsc::channel();
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.stats.queue_depth.fetch_add(1, Ordering::Relaxed);
        let job = SimJob { stim, reply: rtx, enqueued: Instant::now() };
        if self.queue.send(job).is_err() {
            // batcher thread died (can only happen at teardown); the caller
            // sees a disconnected receiver
            self.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
        }
        rrx
    }
}

fn batch_loop(
    rx: Receiver<SimJob>,
    nn: &CompiledNn<f32>,
    stats: &ModelCounters,
    cfg: &BatchConfig,
) {
    let max_batch = cfg.max_batch.max(1);
    let mut runner = SessionRunner::new(nn, cfg.device);
    while let Ok(first) = rx.recv() {
        let deadline = first.enqueued + cfg.max_wait;
        let mut jobs = vec![first];
        while jobs.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => jobs.push(job),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        run_coalesced(&mut runner, nn, stats, jobs);
    }
}

/// Execute one coalesced batch and scatter results. Every job gets a reply
/// (success or error); replies to vanished clients fail silently.
fn run_coalesced(
    runner: &mut SessionRunner<'_, f32>,
    nn: &CompiledNn<f32>,
    stats: &ModelCounters,
    jobs: Vec<SimJob>,
) {
    let lanes = jobs.len();
    stats.batches.fetch_add(1, Ordering::Relaxed);
    stats.lanes.fetch_add(lanes as u64, Ordering::Relaxed);

    let pi = nn.num_primary_inputs;
    let max_cycles = jobs.iter().map(|j| j.stim.cycles.len()).max().unwrap_or(0);
    let mut sessions: Vec<Session<f32>> = jobs.iter().map(|_| Session::new(nn)).collect();
    let mut results: Vec<Vec<Vec<bool>>> = vec![Vec::new(); lanes];
    let mut failure: Option<String> = None;
    for c in 0..max_cycles {
        // short testbenches idle with zero inputs until the batch finishes;
        // their recorded outputs stop at their own length
        let inputs: Vec<Vec<bool>> = jobs
            .iter()
            .map(|j| j.stim.cycles.get(c).cloned().unwrap_or_else(|| vec![false; pi]))
            .collect();
        match runner.step(&mut sessions, &inputs) {
            Ok(outs) => {
                for (lane, job) in jobs.iter().enumerate() {
                    if c < job.stim.cycles.len() {
                        results[lane].push(outs[lane].clone());
                    }
                }
            }
            Err(e) => {
                failure = Some(e.to_string());
                break;
            }
        }
    }
    for (job, result) in jobs.iter().zip(results) {
        let reply = match &failure {
            Some(msg) => Err(format!("batched simulation failed: {msg}")),
            None => Ok(SimOutput { outputs: result }),
        };
        let us = job.enqueued.elapsed().as_micros().min(u64::MAX as u128) as u64;
        stats.latency.observe_us(us);
        stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
        let _ = job.reply.send(reply); // client may be gone — that's fine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2nn_circuits::generators::counter;
    use c2nn_core::{compile, parse_stim, CompileOptions};

    fn counter_nn() -> CompiledNn<f32> {
        compile(&counter(4), CompileOptions::with_l(4)).unwrap()
    }

    #[test]
    fn coalesces_waiting_jobs_into_one_batch() {
        let nn = counter_nn();
        let model = ServedModel::spawn(
            "ctr",
            nn,
            BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(200),
                device: Device::Serial,
            },
        );
        // submit 4 jobs quickly; the 200ms deadline coalesces them
        let stims = ["1 x3\n", "1 x5\n", "0 x2\n", "1 x1\n"];
        let rxs: Vec<_> = stims
            .iter()
            .map(|s| model.submit(parse_stim(s, 1).unwrap()))
            .collect();
        let outs: Vec<SimOutput> =
            rxs.into_iter().map(|rx| rx.recv().unwrap().unwrap()).collect();
        // lane 0: counts 0,1,2 over 3 cycles
        let vals: Vec<u32> = outs[0]
            .outputs
            .iter()
            .map(|c| c.iter().enumerate().map(|(i, &b)| (b as u32) << i).sum())
            .collect();
        assert_eq!(vals, vec![0, 1, 2]);
        assert_eq!(outs[1].outputs.len(), 5);
        assert_eq!(outs[2].outputs.len(), 2);
        assert_eq!(outs[3].outputs.len(), 1);
        let report = model.stats.report("ctr", model.bytes);
        assert_eq!(report.requests, 4);
        assert!(report.mean_occupancy > 1.0, "expected coalescing, got {report:?}");
        assert_eq!(report.queue_depth, 0);
    }

    #[test]
    fn dropped_receiver_does_not_poison_the_batch() {
        let nn = counter_nn();
        let model = ServedModel::spawn(
            "ctr",
            nn,
            BatchConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(100),
                device: Device::Serial,
            },
        );
        let keep = model.submit(parse_stim("1 x4\n", 1).unwrap());
        let drop_me = model.submit(parse_stim("1 x6\n", 1).unwrap());
        drop(drop_me); // client disconnects mid-batch
        let out = keep.recv().unwrap().unwrap();
        assert_eq!(out.outputs.len(), 4);
        let vals: Vec<u32> = out
            .outputs
            .iter()
            .map(|c| c.iter().enumerate().map(|(i, &b)| (b as u32) << i).sum())
            .collect();
        assert_eq!(vals, vec![0, 1, 2, 3], "surviving lane unaffected by the dropout");
    }

    #[test]
    fn lone_job_runs_after_deadline() {
        let nn = counter_nn();
        let model = ServedModel::spawn(
            "ctr",
            nn,
            BatchConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(1),
                device: Device::Serial,
            },
        );
        let rx = model.submit(parse_stim("1 x2\n", 1).unwrap());
        let out = rx.recv().unwrap().unwrap();
        assert_eq!(out.outputs.len(), 2);
        let report = model.stats.report("ctr", model.bytes);
        assert_eq!((report.batches, report.lanes), (1, 1));
    }
}
