//! Micro-batch coalescing: many clients' testbenches, one forward pass.
//!
//! Each served model owns one batcher thread. Incoming `sim` requests are
//! queued; the batcher sleeps until the first job arrives, then keeps
//! admitting jobs until either `max_batch` lanes have accumulated or the
//! `max_wait` deadline (measured from the first queued job) expires —
//! classic dynamic batching, with the batch then executed as one
//! [`SessionRunner`] run per cycle over all lanes. Per-lane outputs scatter
//! back through each job's reply channel; a lane whose client vanished
//! mid-batch just has its reply dropped on the floor — the other lanes are
//! independent columns of the forward pass and are unaffected.
//!
//! The deadline semantics are deliberately *first-job anchored*: the first
//! request in a batch waits at most `max_wait` beyond its arrival, so a
//! lone client's latency floor is `max_wait` (tune it near zero for
//! latency, milliseconds for throughput), while under load the queue
//! usually fills `max_batch` lanes long before the deadline.
//!
//! ## Overload behavior
//!
//! * Under [`Pressure::Elevated`] the coalescing window widens
//!   ([`PRESSURE_WAIT_FACTOR`]×): per-request latency is already shot, so
//!   the scheduler buys goodput with bigger batches instead.
//! * A job carrying a client deadline that expires before batch dispatch
//!   is shed with a typed [`SimFailure::DeadlineExceeded`] — its lane never
//!   occupies the forward pass.
//! * A panic during the batched forward pass (e.g. a pool worker dying) is
//!   caught: every lane in the batch gets a typed failure, the runner is
//!   rebuilt, and the batcher thread survives to serve the next batch —
//!   the pool respawns its worker on the next job ([`c2nn_tensor::Pool`]
//!   self-healing).
//! * An armed [`Chaos`] schedule injects scheduler stalls and worker
//!   panics here, exercising exactly these paths under a fixed seed.

use crate::admission::{Admission, Pressure};
use crate::chaos::Chaos;
use crate::stats::ModelCounters;
use c2nn_core::bitplane::{BitplaneNn, BitplaneRunner};
use c2nn_core::{BackendKind, CompiledNn, Session, SessionRunner, SimError, Stimulus};
use c2nn_tensor::Device;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How much the coalescing window widens at [`Pressure::Elevated`] and
/// above: latency is already dominated by queueing, so trade it for batch
/// occupancy (= goodput).
pub const PRESSURE_WAIT_FACTOR: u32 = 4;

/// Tuning for one model's micro-batcher.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Maximum lanes coalesced into one simulator run.
    pub max_batch: usize,
    /// How long the first queued request may wait for companions.
    pub max_wait: Duration,
    /// Execution device for the batched forward passes.
    pub device: Device,
    /// Execution backend: pooled-CSR lanes or packed bitplanes. With
    /// [`BackendKind::Bitplane`], each batcher legalizes its model once at
    /// spawn and steps a [`BitplaneRunner`] instead of a [`SessionRunner`]
    /// — same `Session` bookkeeping, same bit-exact outputs.
    pub backend: BackendKind,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(2),
            device: Device::Parallel,
            backend: BackendKind::PooledCsr,
        }
    }
}

/// One testbench's results: per-cycle primary-output bit vectors
/// (LSB-first, one entry per stimulus cycle).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimOutput {
    /// `outputs[c][j]` = primary output `j` at cycle `c`.
    pub outputs: Vec<Vec<bool>>,
}

/// Why a submitted job did not produce outputs. Every variant maps to a
/// typed wire reply — overload and failure are contracts, not strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimFailure {
    /// The job's client deadline passed before batch dispatch; the lane
    /// was shed without simulating.
    DeadlineExceeded,
    /// The server is draining; the job was not executed.
    ShuttingDown,
    /// The batched simulation failed (simulator error or a worker panic).
    Failed(String),
}

impl std::fmt::Display for SimFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimFailure::DeadlineExceeded => write!(f, "deadline exceeded before dispatch"),
            SimFailure::ShuttingDown => write!(f, "server shutting down"),
            SimFailure::Failed(msg) => write!(f, "batched simulation failed: {msg}"),
        }
    }
}

struct SimJob {
    stim: Stimulus,
    reply: Sender<Result<SimOutput, SimFailure>>,
    enqueued: Instant,
    /// Absolute client deadline; `None` means "whenever".
    deadline: Option<Instant>,
}

/// A model admitted to the registry: the validated network, its byte
/// accounting, its counters, and the sending side of its batcher queue.
/// Dropping the last `Arc<ServedModel>` closes the queue and the batcher
/// thread exits.
pub struct ServedModel {
    /// Registry key.
    pub name: String,
    /// The compiled, validated network.
    pub nn: Arc<CompiledNn<f32>>,
    /// Size counted against the registry byte budget.
    pub bytes: usize,
    /// Serving counters (shared with the batcher thread).
    pub stats: Arc<ModelCounters>,
    queue: Sender<SimJob>,
}

impl std::fmt::Debug for ServedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServedModel")
            .field("name", &self.name)
            .field("bytes", &self.bytes)
            .finish_non_exhaustive()
    }
}

impl ServedModel {
    /// Validate nothing (the registry already did), wrap `nn`, and spawn
    /// the model's batcher thread. `admission` feeds the pressure signal
    /// that widens the coalescing window; `chaos`, if armed, injects
    /// stalls and worker panics into this batcher.
    pub fn spawn(
        name: &str,
        nn: CompiledNn<f32>,
        cfg: BatchConfig,
        admission: Arc<Admission>,
        chaos: Option<Arc<Chaos>>,
    ) -> Arc<ServedModel> {
        let bytes = nn.memory_bytes();
        let nn = Arc::new(nn);
        let stats = Arc::new(ModelCounters::default());
        let (tx, rx) = mpsc::channel::<SimJob>();
        {
            let nn = Arc::clone(&nn);
            let stats = Arc::clone(&stats);
            let thread_name = format!("c2nn-batch-{name}");
            std::thread::Builder::new()
                .name(thread_name)
                .spawn(move || batch_loop(rx, &nn, &stats, &cfg, &admission, chaos.as_deref()))
                .expect("spawn batcher thread");
        }
        Arc::new(ServedModel {
            name: name.to_string(),
            nn,
            bytes,
            stats,
            queue: tx,
        })
    }

    /// [`ServedModel::spawn`] with no pressure coupling and no chaos —
    /// embedding and test convenience.
    pub fn spawn_standalone(name: &str, nn: CompiledNn<f32>, cfg: BatchConfig) -> Arc<ServedModel> {
        ServedModel::spawn(name, nn, cfg, Admission::unbounded(), None)
    }

    /// Enqueue one testbench (already width-checked against
    /// `nn.num_primary_inputs`) and return the channel its result will
    /// arrive on. The caller blocks on `recv()` for as long as it likes —
    /// or drops the receiver to abandon the request. A `deadline` in the
    /// past is legal: the scheduler sheds the lane with a typed reply.
    pub fn submit(
        &self,
        stim: Stimulus,
        deadline: Option<Instant>,
    ) -> Receiver<Result<SimOutput, SimFailure>> {
        let (rtx, rrx) = mpsc::channel();
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.stats.queue_depth.fetch_add(1, Ordering::Relaxed);
        let job = SimJob { stim, reply: rtx, enqueued: Instant::now(), deadline };
        if self.queue.send(job).is_err() {
            // batcher thread died (can only happen at teardown); the caller
            // sees a disconnected receiver
            self.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
        }
        rrx
    }
}

/// The per-batcher execution engine: one of the two interchangeable
/// backends, both stepping the same `Session` bookkeeping with identical
/// bit-exact semantics.
enum AnyRunner<'a> {
    Csr(SessionRunner<'a, f32>),
    Bitplane(BitplaneRunner<'a, f32>),
}

impl<'a> AnyRunner<'a> {
    fn new(nn: &'a CompiledNn<f32>, plan: Option<&'a BitplaneNn>, device: Device) -> Self {
        match plan {
            Some(p) => AnyRunner::Bitplane(BitplaneRunner::new(p, device)),
            None => AnyRunner::Csr(SessionRunner::new(nn, device)),
        }
    }

    fn step(
        &mut self,
        sessions: &mut [Session<f32>],
        inputs: &[Vec<bool>],
    ) -> Result<Vec<Vec<bool>>, SimError> {
        match self {
            AnyRunner::Csr(r) => r.step(sessions, inputs),
            AnyRunner::Bitplane(r) => r.step(sessions, inputs),
        }
    }
}

fn batch_loop(
    rx: Receiver<SimJob>,
    nn: &CompiledNn<f32>,
    stats: &ModelCounters,
    cfg: &BatchConfig,
    admission: &Admission,
    chaos: Option<&Chaos>,
) {
    let max_batch = cfg.max_batch.max(1);
    // legalize once per batcher thread. A model that cannot legalize falls
    // back to the CSR runner — the registry already rejects such models at
    // install time when the bitplane backend is configured, so this fires
    // only for models installed before the backend was switched
    let plan: Option<BitplaneNn> = match cfg.backend {
        BackendKind::Bitplane => match BitplaneNn::from_compiled(nn) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!(
                    "c2nn-serve: bitplane legalization failed ({e}); serving on pooled-CSR"
                );
                None
            }
        },
        BackendKind::PooledCsr => None,
    };
    let mut runner = AnyRunner::new(nn, plan.as_ref(), cfg.device);
    while let Ok(first) = rx.recv() {
        // graceful degradation: past half the in-flight budget, widen the
        // coalescing window — requests are already queueing, so spend the
        // wait on occupancy instead of dispatching slivers
        let wait = if admission.pressure() >= Pressure::Elevated {
            cfg.max_wait * PRESSURE_WAIT_FACTOR
        } else {
            cfg.max_wait
        };
        let deadline = first.enqueued + wait;
        let mut jobs = vec![first];
        while jobs.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => jobs.push(job),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        if let Some(stall) = chaos.and_then(Chaos::take_stall) {
            std::thread::sleep(stall); // injected scheduler stall
        }
        // shed lanes whose client deadline passed while they queued — a
        // reply nobody can use anymore must not occupy a forward-pass lane
        let now = Instant::now();
        let (live, expired): (Vec<SimJob>, Vec<SimJob>) = jobs
            .into_iter()
            .partition(|j| j.deadline.is_none_or(|d| d > now));
        for job in expired {
            stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            finish_job(stats, &job, Err(SimFailure::DeadlineExceeded));
        }
        if live.is_empty() {
            continue;
        }
        let poisoned = run_coalesced(&mut runner, nn, stats, live, chaos);
        if poisoned {
            // a panic mid-pass may have left the runner's scratch state
            // inconsistent; rebuild it (cheap relative to a batch)
            runner = AnyRunner::new(nn, plan.as_ref(), cfg.device);
        }
    }
}

/// Send one job's reply and settle its counters. Replies to vanished
/// clients fail silently.
fn finish_job(stats: &ModelCounters, job: &SimJob, reply: Result<SimOutput, SimFailure>) {
    let us = job.enqueued.elapsed().as_micros().min(u64::MAX as u128) as u64;
    stats.latency.observe_us(us);
    stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
    let _ = job.reply.send(reply);
}

/// Execute one coalesced batch and scatter results. Every job gets a reply
/// (success or typed failure). Returns `true` if a panic poisoned the
/// runner and it must be rebuilt.
fn run_coalesced(
    runner: &mut AnyRunner<'_>,
    nn: &CompiledNn<f32>,
    stats: &ModelCounters,
    jobs: Vec<SimJob>,
    chaos: Option<&Chaos>,
) -> bool {
    let lanes = jobs.len();
    stats.batches.fetch_add(1, Ordering::Relaxed);
    stats.lanes.fetch_add(lanes as u64, Ordering::Relaxed);

    let pi = nn.num_primary_inputs;
    let max_cycles = jobs.iter().map(|j| j.stim.cycles.len()).max().unwrap_or(0);
    let mut sessions: Vec<Session<f32>> = jobs.iter().map(|_| Session::new(nn)).collect();
    let mut results: Vec<Vec<Vec<bool>>> = vec![Vec::new(); lanes];
    let mut failure: Option<SimFailure> = None;
    let mut poisoned = false;
    let inject_panic = chaos.is_some_and(Chaos::take_worker_panic);
    for c in 0..max_cycles {
        // short testbenches idle with zero inputs until the batch finishes;
        // their recorded outputs stop at their own length
        let inputs: Vec<Vec<bool>> = jobs
            .iter()
            .map(|j| j.stim.cycles.get(c).cloned().unwrap_or_else(|| vec![false; pi]))
            .collect();
        // the forward pass may panic (a pool worker dying, injected or
        // real); contain it to this batch — the batcher must outlive any
        // single batch's failure
        let step = catch_unwind(AssertUnwindSafe(|| {
            if c == 0 && inject_panic {
                c2nn_tensor::Pool::global().inject_worker_panic();
            }
            runner.step(&mut sessions, &inputs)
        }));
        match step {
            Ok(Ok(outs)) => {
                for (lane, job) in jobs.iter().enumerate() {
                    if c < job.stim.cycles.len() {
                        results[lane].push(outs[lane].clone());
                    }
                }
            }
            Ok(Err(e)) => {
                failure = Some(SimFailure::Failed(e.to_string()));
                break;
            }
            Err(payload) => {
                let what = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "worker panicked".to_string());
                failure = Some(SimFailure::Failed(format!(
                    "forward pass panicked at cycle {c}: {what} (pool self-heals; retry)"
                )));
                poisoned = true;
                break;
            }
        }
    }
    for (job, result) in jobs.iter().zip(results) {
        let reply = match &failure {
            Some(f) => Err(f.clone()),
            None => Ok(SimOutput { outputs: result }),
        };
        finish_job(stats, job, reply);
    }
    poisoned
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosConfig;
    use c2nn_circuits::generators::counter;
    use c2nn_core::{compile, parse_stim, CompileOptions};

    fn counter_nn() -> CompiledNn<f32> {
        compile(&counter(4), CompileOptions::with_l(4)).unwrap()
    }

    #[test]
    fn coalesces_waiting_jobs_into_one_batch() {
        let nn = counter_nn();
        let model = ServedModel::spawn_standalone(
            "ctr",
            nn,
            BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(200),
                device: Device::Serial,
                ..BatchConfig::default()
            },
        );
        // submit 4 jobs quickly; the 200ms deadline coalesces them
        let stims = ["1 x3\n", "1 x5\n", "0 x2\n", "1 x1\n"];
        let rxs: Vec<_> = stims
            .iter()
            .map(|s| model.submit(parse_stim(s, 1).unwrap(), None))
            .collect();
        let outs: Vec<SimOutput> =
            rxs.into_iter().map(|rx| rx.recv().unwrap().unwrap()).collect();
        // lane 0: counts 0,1,2 over 3 cycles
        let vals: Vec<u32> = outs[0]
            .outputs
            .iter()
            .map(|c| c.iter().enumerate().map(|(i, &b)| (b as u32) << i).sum())
            .collect();
        assert_eq!(vals, vec![0, 1, 2]);
        assert_eq!(outs[1].outputs.len(), 5);
        assert_eq!(outs[2].outputs.len(), 2);
        assert_eq!(outs[3].outputs.len(), 1);
        let report = model.stats.report("ctr", model.bytes);
        assert_eq!(report.requests, 4);
        assert!(report.mean_occupancy > 1.0, "expected coalescing, got {report:?}");
        assert_eq!(report.queue_depth, 0);
    }

    #[test]
    fn dropped_receiver_does_not_poison_the_batch() {
        let nn = counter_nn();
        let model = ServedModel::spawn_standalone(
            "ctr",
            nn,
            BatchConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(100),
                device: Device::Serial,
                ..BatchConfig::default()
            },
        );
        let keep = model.submit(parse_stim("1 x4\n", 1).unwrap(), None);
        let drop_me = model.submit(parse_stim("1 x6\n", 1).unwrap(), None);
        drop(drop_me); // client disconnects mid-batch
        let out = keep.recv().unwrap().unwrap();
        assert_eq!(out.outputs.len(), 4);
        let vals: Vec<u32> = out
            .outputs
            .iter()
            .map(|c| c.iter().enumerate().map(|(i, &b)| (b as u32) << i).sum())
            .collect();
        assert_eq!(vals, vec![0, 1, 2, 3], "surviving lane unaffected by the dropout");
    }

    #[test]
    fn lone_job_runs_after_deadline() {
        let nn = counter_nn();
        let model = ServedModel::spawn_standalone(
            "ctr",
            nn,
            BatchConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(1),
                device: Device::Serial,
                ..BatchConfig::default()
            },
        );
        let rx = model.submit(parse_stim("1 x2\n", 1).unwrap(), None);
        let out = rx.recv().unwrap().unwrap();
        assert_eq!(out.outputs.len(), 2);
        let report = model.stats.report("ctr", model.bytes);
        assert_eq!((report.batches, report.lanes), (1, 1));
    }

    #[test]
    fn expired_deadline_is_shed_typed_and_costs_no_lane() {
        let nn = counter_nn();
        let model = ServedModel::spawn_standalone(
            "ctr",
            nn,
            BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(50),
                device: Device::Serial,
                ..BatchConfig::default()
            },
        );
        // already expired on arrival: must shed, not simulate
        let dead = model.submit(
            parse_stim("1 x4\n", 1).unwrap(),
            Some(Instant::now() - Duration::from_millis(1)),
        );
        // generous deadline: must run normally in the same batch window
        let live = model.submit(
            parse_stim("1 x3\n", 1).unwrap(),
            Some(Instant::now() + Duration::from_secs(30)),
        );
        assert_eq!(dead.recv().unwrap(), Err(SimFailure::DeadlineExceeded));
        assert_eq!(live.recv().unwrap().unwrap().outputs.len(), 3);
        let report = model.stats.report("ctr", model.bytes);
        assert_eq!(report.deadline_exceeded, 1);
        assert_eq!(report.lanes, 1, "shed lane never reached the forward pass");
        assert_eq!(report.queue_depth, 0);
    }

    #[test]
    fn bitplane_backend_serves_bit_exact_batches() {
        // same compiled model, both backends, identical stimuli → replies
        // must be bit-identical, lane for lane, cycle for cycle
        let nn = counter_nn();
        let stims = ["1 x5\n", "0 x3\n", "1 x7\n", "1 x2\n"];
        let mut replies: Vec<Vec<SimOutput>> = Vec::new();
        for backend in [BackendKind::PooledCsr, BackendKind::Bitplane] {
            let model = ServedModel::spawn_standalone(
                "ctr",
                nn.clone(),
                BatchConfig {
                    max_batch: 8,
                    max_wait: Duration::from_millis(200),
                    device: Device::Serial,
                    backend,
                },
            );
            let rxs: Vec<_> = stims
                .iter()
                .map(|s| model.submit(parse_stim(s, 1).unwrap(), None))
                .collect();
            replies.push(rxs.into_iter().map(|rx| rx.recv().unwrap().unwrap()).collect());
        }
        assert_eq!(replies[0], replies[1], "backends disagree over the wire");
        // sanity: the counter actually counted
        let vals: Vec<u32> = replies[1][0]
            .outputs
            .iter()
            .map(|c| c.iter().enumerate().map(|(i, &b)| (b as u32) << i).sum())
            .collect();
        assert_eq!(vals, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bitplane_batcher_survives_injected_panic() {
        // the poisoned-runner rebuild path must restore a *bitplane*
        // runner, not silently fall back to CSR semantics
        let nn = counter_nn();
        let chaos = Chaos::new(ChaosConfig::parse("worker_panic=1,worker_panic_budget=1").unwrap());
        let model = ServedModel::spawn(
            "ctr",
            nn,
            BatchConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(10),
                device: Device::Parallel,
                backend: BackendKind::Bitplane,
            },
            Admission::unbounded(),
            Some(Arc::clone(&chaos)),
        );
        let rx = model.submit(parse_stim("1 x4\n", 1).unwrap(), None);
        assert!(
            matches!(rx.recv().unwrap(), Err(SimFailure::Failed(_))),
            "first batch rides the injected panic"
        );
        let rx = model.submit(parse_stim("1 x3\n", 1).unwrap(), None);
        let out = rx.recv().unwrap().unwrap();
        let vals: Vec<u32> = out
            .outputs
            .iter()
            .map(|c| c.iter().enumerate().map(|(i, &b)| (b as u32) << i).sum())
            .collect();
        assert_eq!(vals, vec![0, 1, 2], "bitplane batcher recovered bit-exactly");
    }

    #[test]
    fn injected_worker_panic_fails_batch_typed_and_batcher_survives() {
        let nn = counter_nn();
        let chaos = Chaos::new(ChaosConfig::parse("worker_panic=1,worker_panic_budget=1").unwrap());
        let model = ServedModel::spawn(
            "ctr",
            nn,
            BatchConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(10),
                // Parallel so the injection hits the real pool path
                device: Device::Parallel,
                ..BatchConfig::default()
            },
            Admission::unbounded(),
            Some(Arc::clone(&chaos)),
        );
        let rx = model.submit(parse_stim("1 x4\n", 1).unwrap(), None);
        match rx.recv().unwrap() {
            Err(SimFailure::Failed(msg)) => {
                assert!(msg.contains("panicked"), "typed panic failure, got: {msg}")
            }
            other => panic!("expected typed failure, got {other:?}"),
        }
        assert_eq!(chaos.injected_panics(), 1);
        // budget exhausted → the very next batch succeeds bit-exactly
        let rx = model.submit(parse_stim("1 x3\n", 1).unwrap(), None);
        let out = rx.recv().unwrap().unwrap();
        let vals: Vec<u32> = out
            .outputs
            .iter()
            .map(|c| c.iter().enumerate().map(|(i, &b)| (b as u32) << i).sum())
            .collect();
        assert_eq!(vals, vec![0, 1, 2], "batcher and pool recovered");
    }
}
