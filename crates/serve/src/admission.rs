//! Admission control: bounded in-flight budgets and typed overload replies.
//!
//! The thread-per-connection server used to queue without limit — past
//! saturation, latency grew unboundedly and the only "overload signal" a
//! client ever saw was a timeout. This module makes overload a *contract*:
//!
//! * a **global in-flight budget** (`max_inflight`) bounds how many `sim`
//!   requests may be between admission and reply at once, enforced by RAII
//!   [`SimPermit`]s — a permit leak is a compile error, not a slow drift;
//! * a **per-model soft budget** (`max_inflight_per_model`) keeps one hot
//!   model from starving the rest (soft because it reads the model's queue
//!   depth without a lock; it can overshoot by at most the number of
//!   connections racing the check);
//! * rejected requests get a typed `Overloaded { retry_after_ms }` reply —
//!   never a dropped connection, never unbounded queueing;
//! * the **degradation order is fixed**: `load`s are refused at
//!   [`Pressure::Elevated`] (half the budget), `sim`s only at
//!   [`Pressure::Saturated`] (full budget), and everything is refused with
//!   `ShuttingDown` once [`Admission::begin_drain`] is called. Loads are
//!   shed first because they are the expensive, deferrable operation:
//!   admitting a model costs a full parse + validation and permanently
//!   grows the working set, while a sim is the business.
//!
//! The scheduler also reads [`Admission::pressure`] to widen its coalescing
//! window under load — bigger batches trade per-request latency for
//! goodput exactly when that trade is worth making.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// How loaded the server currently is, derived from the global in-flight
/// count against `max_inflight`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pressure {
    /// Below half the budget: everything is admitted.
    Nominal,
    /// At or above half the budget: new `load`s are refused, the
    /// coalescer widens its batching window.
    Elevated,
    /// Budget exhausted: new `sim`s are refused too.
    Saturated,
}

/// Why a request was not admitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// Budget exhausted; retry after the hinted delay.
    Overloaded {
        /// Client-facing retry hint in milliseconds.
        retry_after_ms: u64,
    },
    /// The server is draining; no new work is admitted.
    ShuttingDown,
}

/// Shared admission state; one per server, owned by the registry.
pub struct Admission {
    max_inflight: usize,
    max_inflight_per_model: usize,
    /// Base of the `retry_after_ms` hint — one coalescing window, because
    /// that is how long it takes the scheduler to drain a batch's worth of
    /// queued lanes.
    retry_hint_ms: u64,
    inflight: AtomicUsize,
    draining: AtomicBool,
    /// `sim` requests refused with `Overloaded`.
    pub rejected_sims: AtomicU64,
    /// `load` requests refused with `Overloaded`.
    pub rejected_loads: AtomicU64,
    /// Requests refused with `ShuttingDown` during drain.
    pub rejected_draining: AtomicU64,
}

impl std::fmt::Debug for Admission {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Admission")
            .field("max_inflight", &self.max_inflight)
            .field("inflight", &self.inflight.load(Ordering::Relaxed))
            .field("draining", &self.draining.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// RAII guard for one admitted `sim`: holds a unit of the global in-flight
/// budget from admission until the reply is written (drop).
#[derive(Debug)]
pub struct SimPermit {
    admission: Arc<Admission>,
}

impl Drop for SimPermit {
    fn drop(&mut self) {
        self.admission.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Admission {
    /// Budgeted admission state. `max_inflight` of 0 is clamped to 1 (a
    /// server that can admit nothing is just `begin_drain`).
    pub fn new(
        max_inflight: usize,
        max_inflight_per_model: usize,
        retry_hint_ms: u64,
    ) -> Arc<Admission> {
        Arc::new(Admission {
            max_inflight: max_inflight.max(1),
            max_inflight_per_model: max_inflight_per_model.max(1),
            retry_hint_ms: retry_hint_ms.clamp(1, 1_000),
            inflight: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            rejected_sims: AtomicU64::new(0),
            rejected_loads: AtomicU64::new(0),
            rejected_draining: AtomicU64::new(0),
        })
    }

    /// An effectively unbounded instance (tests, in-process embedding).
    pub fn unbounded() -> Arc<Admission> {
        Admission::new(usize::MAX, usize::MAX, 1)
    }

    /// The configured global budget.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// `sim` requests currently between admission and reply.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Current pressure level; also consulted by the scheduler to widen
    /// its coalescing window.
    pub fn pressure(&self) -> Pressure {
        let inflight = self.inflight();
        if inflight >= self.max_inflight {
            Pressure::Saturated
        } else if inflight.saturating_mul(2) >= self.max_inflight {
            Pressure::Elevated
        } else {
            Pressure::Nominal
        }
    }

    /// Stop admitting anything; in-flight work keeps its permits and
    /// completes. Idempotent.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Is the server refusing all new work?
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// How long a rejected client should wait before retrying: one
    /// coalescing window per queued-budget's worth of backlog, clamped to
    /// `[1ms, 1s]` so the hint is always actionable.
    pub fn retry_after_ms(&self) -> u64 {
        let backlog_windows =
            1 + (self.inflight().saturating_sub(self.max_inflight) / self.max_inflight) as u64;
        self.retry_hint_ms
            .saturating_mul(backlog_windows)
            .clamp(1, 1_000)
    }

    /// Try to admit one `sim` under the global budget.
    pub fn try_admit_sim(self: &Arc<Self>) -> Result<SimPermit, AdmitError> {
        if self.draining() {
            self.rejected_draining.fetch_add(1, Ordering::Relaxed);
            return Err(AdmitError::ShuttingDown);
        }
        let admitted = self
            .inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                if n < self.max_inflight {
                    Some(n + 1)
                } else {
                    None
                }
            })
            .is_ok();
        if admitted {
            Ok(SimPermit {
                admission: Arc::clone(self),
            })
        } else {
            self.rejected_sims.fetch_add(1, Ordering::Relaxed);
            Err(AdmitError::Overloaded {
                retry_after_ms: self.retry_after_ms(),
            })
        }
    }

    /// Check the per-model soft budget against the model's live queue
    /// depth (sampled by the caller from its counters).
    pub fn check_model_budget(&self, model_queue_depth: u64) -> Result<(), AdmitError> {
        if model_queue_depth >= self.max_inflight_per_model as u64 {
            self.rejected_sims.fetch_add(1, Ordering::Relaxed);
            Err(AdmitError::Overloaded {
                retry_after_ms: self.retry_after_ms(),
            })
        } else {
            Ok(())
        }
    }

    /// Try to admit one `load`. Loads shed first: refused at
    /// [`Pressure::Elevated`], not just [`Pressure::Saturated`].
    pub fn try_admit_load(&self) -> Result<(), AdmitError> {
        if self.draining() {
            self.rejected_draining.fetch_add(1, Ordering::Relaxed);
            return Err(AdmitError::ShuttingDown);
        }
        if self.pressure() >= Pressure::Elevated {
            self.rejected_loads.fetch_add(1, Ordering::Relaxed);
            return Err(AdmitError::Overloaded {
                retry_after_ms: self.retry_after_ms(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_enforced_and_released() {
        let adm = Admission::new(2, usize::MAX, 5);
        let p1 = adm.try_admit_sim().unwrap();
        let p2 = adm.try_admit_sim().unwrap();
        let err = adm.try_admit_sim().unwrap_err();
        assert!(
            matches!(err, AdmitError::Overloaded { retry_after_ms } if (1..=1000).contains(&retry_after_ms))
        );
        assert_eq!(adm.rejected_sims.load(Ordering::Relaxed), 1);
        drop(p1);
        let _p3 = adm.try_admit_sim().expect("released permit readmits");
        drop(p2);
    }

    #[test]
    fn pressure_ladder() {
        let adm = Admission::new(4, usize::MAX, 1);
        assert_eq!(adm.pressure(), Pressure::Nominal);
        let _a = adm.try_admit_sim().unwrap();
        assert_eq!(adm.pressure(), Pressure::Nominal);
        let _b = adm.try_admit_sim().unwrap();
        assert_eq!(adm.pressure(), Pressure::Elevated, "half budget");
        let _c = adm.try_admit_sim().unwrap();
        let _d = adm.try_admit_sim().unwrap();
        assert_eq!(adm.pressure(), Pressure::Saturated);
    }

    #[test]
    fn loads_shed_before_sims() {
        let adm = Admission::new(2, usize::MAX, 1);
        assert!(adm.try_admit_load().is_ok());
        let _p = adm.try_admit_sim().unwrap(); // 1/2 in flight → Elevated
        assert!(
            matches!(adm.try_admit_load(), Err(AdmitError::Overloaded { .. })),
            "loads refused while sims still admitted"
        );
        let _p2 = adm
            .try_admit_sim()
            .expect("sims still admitted at Elevated");
        assert!(matches!(
            adm.try_admit_sim(),
            Err(AdmitError::Overloaded { .. })
        ));
        assert_eq!(adm.rejected_loads.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn draining_refuses_everything_typed() {
        let adm = Admission::new(8, usize::MAX, 1);
        adm.begin_drain();
        assert!(matches!(adm.try_admit_sim(), Err(AdmitError::ShuttingDown)));
        assert!(matches!(
            adm.try_admit_load(),
            Err(AdmitError::ShuttingDown)
        ));
        assert_eq!(adm.rejected_draining.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn per_model_soft_budget() {
        let adm = Admission::new(100, 4, 1);
        assert!(adm.check_model_budget(3).is_ok());
        assert!(matches!(
            adm.check_model_budget(4),
            Err(AdmitError::Overloaded { .. })
        ));
    }

    #[test]
    fn retry_hint_is_clamped_and_sane() {
        let adm = Admission::new(1, usize::MAX, 500_000);
        assert!(adm.retry_after_ms() <= 1_000);
        let adm = Admission::new(1, usize::MAX, 0);
        assert!(adm.retry_after_ms() >= 1);
    }
}
