//! Prometheus text exposition (format 0.0.4) over the serving stats.
//!
//! The serving layer already keeps relaxed-atomic counters and log-bucketed
//! latency histograms per model ([`crate::stats`]) plus server-wide
//! overload counters ([`crate::admission`]). This module renders all of it
//! — together with the event loop's own I/O gauges ([`IoGauges`]) — in the
//! Prometheus text exposition format, served on `GET /metrics` by both
//! server I/O models and dumped by `c2nn client --metrics`.
//!
//! Three deliberate properties:
//!
//! * **Render is a snapshot, not a lock.** Every value is one relaxed
//!   atomic load; a scrape racing live traffic may see a histogram bucket
//!   before its `_count`, which Prometheus tolerates (counters are
//!   monotone, rates smooth it out).
//! * **The renderer has a parser next to it.** [`parse_exposition`] and
//!   [`validate_exposition`] exist so CI can scrape `/metrics` and prove
//!   the output well-formed (every `# TYPE` matched by samples, no
//!   duplicate series, histogram buckets cumulative) instead of eyeballing
//!   it — and so proptest can round-trip render → parse.
//! * **Latency buckets are the histogram's own.** `le` boundaries come
//!   from [`crate::stats::bucket_upper_bound_us`], so the wire exposition
//!   and the in-process quantiles can never disagree about bucketing.

use crate::protocol::WireFormat;
use crate::registry::Registry;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// MIME type of the exposition, as expected by Prometheus scrapers.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Event-loop / connection-level gauges and counters, owned by the
/// registry so both I/O models (threaded and epoll) feed the same series.
#[derive(Default)]
pub struct IoGauges {
    /// Connections currently open (accepted, not yet closed).
    pub open_connections: AtomicU64,
    /// Connections accepted since start.
    pub accepted_total: AtomicU64,
    /// Readiness wakeups: `epoll_wait` returns (event loop) — 0 under the
    /// threaded model, which has no readiness notion.
    pub readiness_wakeups_total: AtomicU64,
    /// Completions queued by batcher threads, not yet drained by the event
    /// loop.
    pub completion_queue_depth: AtomicU64,
    /// `GET /metrics` scrapes answered.
    pub http_scrapes_total: AtomicU64,
    /// Times a connection's write buffer crossed the high watermark and
    /// reads were paused (TCP backpressure engaged).
    pub write_backpressure_total: AtomicU64,
    /// Protocol frames decoded off sockets.
    pub frames_read_total: AtomicU64,
    /// Protocol frames written back to sockets.
    pub frames_written_total: AtomicU64,
    /// Frames handled (read + written) on the JSON codec.
    pub wire_json_frames: AtomicU64,
    /// Frames handled (read + written) on the binary codec.
    pub wire_binary_frames: AtomicU64,
    /// Wire bytes read on the JSON codec.
    pub wire_json_bytes_in: AtomicU64,
    /// Wire bytes written on the JSON codec.
    pub wire_json_bytes_out: AtomicU64,
    /// Wire bytes read on the binary codec.
    pub wire_binary_bytes_in: AtomicU64,
    /// Wire bytes written on the binary codec.
    pub wire_binary_bytes_out: AtomicU64,
}

impl IoGauges {
    /// Record one request frame of `bytes` wire bytes decoded on `wire`:
    /// bumps the codec-agnostic read counter plus the per-codec series.
    pub fn record_frame_read(&self, wire: WireFormat, bytes: u64) {
        self.frames_read_total.fetch_add(1, Ordering::Relaxed);
        let (frames, bytes_in) = match wire {
            WireFormat::Json => (&self.wire_json_frames, &self.wire_json_bytes_in),
            WireFormat::Binary => (&self.wire_binary_frames, &self.wire_binary_bytes_in),
        };
        frames.fetch_add(1, Ordering::Relaxed);
        bytes_in.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record one response frame of `bytes` wire bytes encoded on `wire`.
    pub fn record_frame_written(&self, wire: WireFormat, bytes: u64) {
        self.frames_written_total.fetch_add(1, Ordering::Relaxed);
        let (frames, bytes_out) = match wire {
            WireFormat::Json => (&self.wire_json_frames, &self.wire_json_bytes_out),
            WireFormat::Binary => (&self.wire_binary_frames, &self.wire_binary_bytes_out),
        };
        frames.fetch_add(1, Ordering::Relaxed);
        bytes_out.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Frames handled so far on `wire` (read + written).
    pub fn wire_frames(&self, wire: WireFormat) -> u64 {
        match wire {
            WireFormat::Json => self.wire_json_frames.load(Ordering::Relaxed),
            WireFormat::Binary => self.wire_binary_frames.load(Ordering::Relaxed),
        }
    }
}

/// Kind of a metric family, controlling the `# TYPE` line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing.
    Counter,
    /// Free-running value.
    Gauge,
    /// Cumulative `_bucket{le=...}` series plus `_sum` and `_count`.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One sample line: `name{labels} value`.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Full sample name (for histograms this includes the `_bucket` /
    /// `_sum` / `_count` suffix).
    pub name: String,
    /// Label pairs, in render order.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: f64,
}

impl Sample {
    fn new(name: impl Into<String>, labels: &[(&str, &str)], value: f64) -> Sample {
        Sample {
            name: name.into(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        }
    }
}

/// One metric family: a `# HELP` + `# TYPE` header and its samples.
#[derive(Clone, Debug)]
pub struct Family {
    /// Family name (histogram samples append their suffixes to it).
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// Family kind.
    pub kind: MetricKind,
    /// Samples, rendered in order.
    pub samples: Vec<Sample>,
}

impl Family {
    fn new(name: &str, help: &str, kind: MetricKind) -> Family {
        Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples: Vec::new(),
        }
    }
}

/// Escape a label value for the exposition format: `\` → `\\`, `"` → `\"`,
/// newline → `\n`.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape `# HELP` text: `\` → `\\`, newline → `\n`.
fn escape_help(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 {
            "+Inf".to_string()
        } else {
            "-Inf".to_string()
        }
    } else if v.is_nan() {
        "NaN".to_string()
    } else {
        // `{}` prints the shortest representation that round-trips f64
        format!("{v}")
    }
}

/// Render families to exposition text. Deterministic: same families in,
/// same bytes out.
pub fn render(families: &[Family]) -> String {
    let mut out = String::new();
    for f in families {
        let _ = writeln!(out, "# HELP {} {}", f.name, escape_help(&f.help));
        let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind.as_str());
        for s in &f.samples {
            out.push_str(&s.name);
            if !s.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in s.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{k}=\"{}\"", escape_label(v));
                }
                out.push('}');
            }
            out.push(' ');
            out.push_str(&fmt_value(s.value));
            out.push('\n');
        }
    }
    out
}

fn load(a: &AtomicU64) -> f64 {
    a.load(Ordering::Relaxed) as f64
}

/// Snapshot every serving metric into families: per-model counters and
/// latency histograms, server-wide admission counters, per-backend
/// occupancy, and the I/O gauges.
pub fn gather(registry: &Registry) -> Vec<Family> {
    let models = registry.stats();
    let server = registry.server_report();
    let io = registry.gauges();

    let mut fams = Vec::new();

    // --- per-model counters ---------------------------------------------
    let mut requests = Family::new(
        "c2nn_requests_total",
        "sim requests accepted per model",
        MetricKind::Counter,
    );
    let mut batches = Family::new(
        "c2nn_batches_total",
        "batched simulator runs executed per model",
        MetricKind::Counter,
    );
    let mut lanes = Family::new(
        "c2nn_lanes_total",
        "total lanes across all executed batches per model",
        MetricKind::Counter,
    );
    let mut depth = Family::new(
        "c2nn_queue_depth",
        "requests queued or in flight per model",
        MetricKind::Gauge,
    );
    let mut shed = Family::new(
        "c2nn_deadline_exceeded_total",
        "lanes shed with DeadlineExceeded before dispatch per model",
        MetricKind::Counter,
    );
    let mut bytes = Family::new(
        "c2nn_model_bytes",
        "model size counted against the registry byte budget",
        MetricKind::Gauge,
    );
    let mut occupancy = Family::new(
        "c2nn_batch_occupancy",
        "mean lanes per executed batch (the coalescing win), labeled by backend",
        MetricKind::Gauge,
    );
    for m in &models {
        let l = [("model", m.name.as_str())];
        requests
            .samples
            .push(Sample::new("c2nn_requests_total", &l, m.requests as f64));
        batches
            .samples
            .push(Sample::new("c2nn_batches_total", &l, m.batches as f64));
        lanes
            .samples
            .push(Sample::new("c2nn_lanes_total", &l, m.lanes as f64));
        depth
            .samples
            .push(Sample::new("c2nn_queue_depth", &l, m.queue_depth as f64));
        shed.samples.push(Sample::new(
            "c2nn_deadline_exceeded_total",
            &l,
            m.deadline_exceeded as f64,
        ));
        bytes
            .samples
            .push(Sample::new("c2nn_model_bytes", &l, m.bytes as f64));
        occupancy.samples.push(Sample::new(
            "c2nn_batch_occupancy",
            &[("model", m.name.as_str()), ("backend", m.backend.as_str())],
            m.mean_occupancy,
        ));
    }
    fams.extend([requests, batches, lanes, depth, shed, bytes, occupancy]);

    // --- per-model latency histograms -----------------------------------
    let mut hist = Family::new(
        "c2nn_request_latency_seconds",
        "enqueue-to-reply latency per model",
        MetricKind::Histogram,
    );
    for m in &models {
        let Some(counters) = registry.peek_stats(&m.name) else {
            continue;
        };
        let counts = counters.latency.bucket_counts();
        let l_model = m.name.as_str();
        let mut cum = 0u64;
        let mut last_le: Option<String> = None;
        for (i, &c) in counts.iter().enumerate() {
            cum += c;
            let ub = crate::stats::bucket_upper_bound_us(i);
            let le = if ub == u64::MAX {
                "+Inf".to_string()
            } else {
                fmt_value(ub as f64 / 1e6)
            };
            // adjacent log buckets can share an upper bound (0µs and 1µs
            // both clamp to le="0.000001"); merge them — cumulative counts
            // make the later value the correct one for the shared bound
            if last_le.as_deref() == Some(le.as_str()) {
                if let Some(prev) = hist.samples.last_mut() {
                    prev.value = cum as f64;
                }
                continue;
            }
            hist.samples.push(Sample::new(
                "c2nn_request_latency_seconds_bucket",
                &[("model", l_model), ("le", le.as_str())],
                cum as f64,
            ));
            last_le = Some(le);
        }
        // the top bucket is already unbounded; still emit the canonical
        // +Inf bucket when the boundary table didn't (BUCKETS < 64)
        if crate::stats::bucket_upper_bound_us(counts.len() - 1) != u64::MAX {
            hist.samples.push(Sample::new(
                "c2nn_request_latency_seconds_bucket",
                &[("model", l_model), ("le", "+Inf")],
                cum as f64,
            ));
        }
        hist.samples.push(Sample::new(
            "c2nn_request_latency_seconds_sum",
            &[("model", l_model)],
            counters.latency.sum_us() as f64 / 1e6,
        ));
        hist.samples.push(Sample::new(
            "c2nn_request_latency_seconds_count",
            &[("model", l_model)],
            cum as f64,
        ));
    }
    fams.push(hist);

    // --- per-backend rollup ----------------------------------------------
    let mut be_models = Family::new(
        "c2nn_backend_models",
        "models currently served per execution backend",
        MetricKind::Gauge,
    );
    let mut be_requests = Family::new(
        "c2nn_backend_requests_total",
        "sim requests accepted per execution backend",
        MetricKind::Counter,
    );
    for b in &server.backends {
        let l = [("backend", b.backend.as_str())];
        be_models
            .samples
            .push(Sample::new("c2nn_backend_models", &l, b.models as f64));
        be_requests.samples.push(Sample::new(
            "c2nn_backend_requests_total",
            &l,
            b.requests as f64,
        ));
    }
    fams.extend([be_models, be_requests]);

    // --- server-wide admission -------------------------------------------
    let one_gauge = |name: &str, help: &str, v: f64| {
        let mut f = Family::new(name, help, MetricKind::Gauge);
        f.samples.push(Sample::new(name, &[], v));
        f
    };
    fams.push(one_gauge(
        "c2nn_inflight",
        "sim requests currently between admission and reply",
        server.inflight as f64,
    ));
    fams.push(one_gauge(
        "c2nn_max_inflight",
        "configured global in-flight budget",
        server.max_inflight as f64,
    ));
    fams.push(one_gauge(
        "c2nn_pressure",
        "admission pressure ladder: 0 nominal, 1 elevated, 2 saturated",
        match server.pressure.as_str() {
            "saturated" => 2.0,
            "elevated" => 1.0,
            _ => 0.0,
        },
    ));
    fams.push(one_gauge(
        "c2nn_draining",
        "1 while the server refuses all new work",
        server.draining as u64 as f64,
    ));
    let mut rejected = Family::new(
        "c2nn_rejected_total",
        "requests refused with a typed reply, by kind",
        MetricKind::Counter,
    );
    rejected.samples.push(Sample::new(
        "c2nn_rejected_total",
        &[("kind", "sim_overloaded")],
        server.rejected_sims as f64,
    ));
    rejected.samples.push(Sample::new(
        "c2nn_rejected_total",
        &[("kind", "load_overloaded")],
        server.rejected_loads as f64,
    ));
    rejected.samples.push(Sample::new(
        "c2nn_rejected_total",
        &[("kind", "draining")],
        server.rejected_draining as f64,
    ));
    fams.push(rejected);
    let mut poisoned = Family::new(
        "c2nn_pool_poisoned_epochs_total",
        "worker-pool epochs that lost a participant to a panic",
        MetricKind::Counter,
    );
    poisoned.samples.push(Sample::new(
        "c2nn_pool_poisoned_epochs_total",
        &[],
        server.pool_poisoned_epochs as f64,
    ));
    fams.push(poisoned);

    // --- event-loop / connection I/O -------------------------------------
    let counter1 = |name: &str, help: &str, v: f64| {
        let mut f = Family::new(name, help, MetricKind::Counter);
        f.samples.push(Sample::new(name, &[], v));
        f
    };
    fams.push(one_gauge(
        "c2nn_open_connections",
        "client connections currently open",
        load(&io.open_connections),
    ));
    fams.push(counter1(
        "c2nn_connections_accepted_total",
        "client connections accepted since start",
        load(&io.accepted_total),
    ));
    fams.push(counter1(
        "c2nn_readiness_wakeups_total",
        "event-loop readiness wakeups (epoll_wait returns)",
        load(&io.readiness_wakeups_total),
    ));
    fams.push(one_gauge(
        "c2nn_completion_queue_depth",
        "batcher completions queued for the event loop",
        load(&io.completion_queue_depth),
    ));
    fams.push(counter1(
        "c2nn_http_scrapes_total",
        "GET /metrics scrapes answered",
        load(&io.http_scrapes_total),
    ));
    fams.push(counter1(
        "c2nn_write_backpressure_total",
        "times a write buffer crossed the high watermark and reads paused",
        load(&io.write_backpressure_total),
    ));
    fams.push(counter1(
        "c2nn_frames_read_total",
        "protocol frames decoded off sockets",
        load(&io.frames_read_total),
    ));
    fams.push(counter1(
        "c2nn_frames_written_total",
        "protocol frames written to sockets",
        load(&io.frames_written_total),
    ));

    // --- per-codec wire traffic ------------------------------------------
    let mut wire_frames = Family::new(
        "c2nn_serve_frames_total",
        "protocol frames handled (read + written) per wire codec",
        MetricKind::Counter,
    );
    let mut wire_bytes = Family::new(
        "c2nn_serve_wire_bytes_total",
        "wire bytes per codec and direction",
        MetricKind::Counter,
    );
    for (codec, frames, bytes_in, bytes_out) in [
        (
            "json",
            &io.wire_json_frames,
            &io.wire_json_bytes_in,
            &io.wire_json_bytes_out,
        ),
        (
            "binary",
            &io.wire_binary_frames,
            &io.wire_binary_bytes_in,
            &io.wire_binary_bytes_out,
        ),
    ] {
        wire_frames.samples.push(Sample::new(
            "c2nn_serve_frames_total",
            &[("codec", codec)],
            load(frames),
        ));
        wire_bytes.samples.push(Sample::new(
            "c2nn_serve_wire_bytes_total",
            &[("codec", codec), ("direction", "in")],
            load(bytes_in),
        ));
        wire_bytes.samples.push(Sample::new(
            "c2nn_serve_wire_bytes_total",
            &[("codec", codec), ("direction", "out")],
            load(bytes_out),
        ));
    }
    fams.extend([wire_frames, wire_bytes]);
    fams
}

/// Snapshot and render in one call — the `/metrics` handler body.
pub fn render_for(registry: &Registry) -> String {
    render(&gather(registry))
}

/// Wrap an exposition body in a minimal `HTTP/1.1 200` response
/// (`Connection: close`; the scraper reads to EOF).
pub fn http_ok(body: &str) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {CONTENT_TYPE}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Minimal `404` for HTTP paths other than `/metrics`.
pub fn http_not_found() -> Vec<u8> {
    b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n".to_vec()
}

// ---------------------------------------------------------------------------
// Parsing & validation (CI scrape checks, proptest round-trip)
// ---------------------------------------------------------------------------

/// A parsed exposition: `# TYPE` declarations plus all samples, in order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Exposition {
    /// `(family name, kind)` per `# TYPE` line, in order.
    pub types: Vec<(String, String)>,
    /// Every sample line, in order.
    pub samples: Vec<Sample>,
}

fn unescape_label(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            other => return Err(format!("bad escape `\\{}`", other.unwrap_or(' '))),
        }
    }
    Ok(out)
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        s => s
            .parse::<f64>()
            .map_err(|e| format!("bad value `{s}`: {e}")),
    }
}

/// Parse a sample line `name{k="v",...} value`. The label scanner respects
/// escapes, so values containing `"` or `,` survive.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let err = |m: &str| format!("{m} in `{line}`");
    let (name_part, labels_text, value_text) = match line.find('{') {
        Some(open) => {
            let close = find_label_close(line, open).ok_or_else(|| err("unterminated labels"))?;
            (
                &line[..open],
                Some(&line[open + 1..close]),
                line[close + 1..].trim(),
            )
        }
        None => {
            let sp = line.find(' ').ok_or_else(|| err("missing value"))?;
            (&line[..sp], None, line[sp + 1..].trim())
        }
    };
    let name = name_part.trim().to_string();
    if name.is_empty() {
        return Err(err("empty metric name"));
    }
    let mut labels = Vec::new();
    if let Some(text) = labels_text {
        for pair in split_label_pairs(text)? {
            let eq = pair.find('=').ok_or_else(|| err("label without `=`"))?;
            let key = pair[..eq].trim().to_string();
            let raw = pair[eq + 1..].trim();
            let inner = raw
                .strip_prefix('"')
                .and_then(|r| r.strip_suffix('"'))
                .ok_or_else(|| err("label value not quoted"))?;
            labels.push((key, unescape_label(inner)?));
        }
    }
    Ok(Sample {
        name,
        labels,
        value: parse_value(value_text)?,
    })
}

/// Index of the `}` closing the label block opened at `open`, skipping
/// braces inside quoted label values.
fn find_label_close(line: &str, open: usize) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate().skip(open + 1) {
        if escaped {
            escaped = false;
        } else if in_quotes && b == b'\\' {
            escaped = true;
        } else if b == b'"' {
            in_quotes = !in_quotes;
        } else if b == b'}' && !in_quotes {
            return Some(i);
        }
    }
    None
}

/// Split `k1="v1",k2="v2"` on commas outside quotes.
fn split_label_pairs(text: &str) -> Result<Vec<&str>, String> {
    let mut pairs = Vec::new();
    let bytes = text.as_bytes();
    let mut start = 0usize;
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if escaped {
            escaped = false;
        } else if in_quotes && b == b'\\' {
            escaped = true;
        } else if b == b'"' {
            in_quotes = !in_quotes;
        } else if b == b',' && !in_quotes {
            pairs.push(text[start..i].trim());
            start = i + 1;
        }
    }
    if in_quotes {
        return Err(format!("unterminated quote in labels `{text}`"));
    }
    let last = text[start..].trim();
    if !last.is_empty() {
        pairs.push(last);
    }
    Ok(pairs)
}

/// Parse exposition text into its `# TYPE` declarations and samples.
/// Unknown comment lines are skipped; malformed sample lines are errors.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut exp = Exposition::default();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or("# TYPE without name")?.to_string();
            let kind = it.next().ok_or("# TYPE without kind")?.to_string();
            if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind.as_str()) {
                return Err(format!("unknown kind `{kind}` in `{line}`"));
            }
            exp.types.push((name, kind));
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP and arbitrary comments
        }
        exp.samples.push(parse_sample(line)?);
    }
    Ok(exp)
}

fn series_key(s: &Sample) -> String {
    let mut labels = s.labels.clone();
    labels.sort();
    let mut key = s.name.clone();
    for (k, v) in labels {
        key.push('\u{1}');
        key.push_str(&k);
        key.push('\u{2}');
        key.push_str(&v);
    }
    key
}

/// Validate exposition text the way the CI scrape job needs: it parses,
/// every `# TYPE` family has at least one sample, no series (name +
/// label set) repeats, and every histogram has cumulative buckets ending
/// in a `+Inf` bucket that equals its `_count`.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let exp = parse_exposition(text)?;
    // no duplicate series
    let mut seen = std::collections::BTreeSet::new();
    for s in &exp.samples {
        if !seen.insert(series_key(s)) {
            return Err(format!("duplicate series `{}` {:?}", s.name, s.labels));
        }
    }
    // every # TYPE has at least one sample
    for (name, kind) in &exp.types {
        let matches = |s: &Sample| {
            if kind == "histogram" {
                s.name == *name
                    || s.name == format!("{name}_bucket")
                    || s.name == format!("{name}_sum")
                    || s.name == format!("{name}_count")
            } else {
                s.name == *name
            }
        };
        if !exp.samples.iter().any(matches) {
            return Err(format!("# TYPE {name} {kind} has no samples"));
        }
    }
    // histogram shape: per label-subset (excluding `le`), buckets are
    // cumulative in declared order, end with +Inf, and match _count
    for (name, kind) in &exp.types {
        if kind != "histogram" {
            continue;
        }
        let bucket_name = format!("{name}_bucket");
        let count_name = format!("{name}_count");
        let mut groups: Vec<(String, Vec<&Sample>)> = Vec::new();
        for s in exp.samples.iter().filter(|s| s.name == bucket_name) {
            let mut rest: Vec<_> = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .cloned()
                .collect();
            rest.sort();
            let key = format!("{rest:?}");
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => v.push(s),
                None => groups.push((key, vec![s])),
            }
        }
        for (key, buckets) in &groups {
            let mut prev = f64::NEG_INFINITY;
            for b in buckets {
                if b.value < prev {
                    return Err(format!(
                        "{bucket_name}{key}: bucket counts not cumulative ({} < {prev})",
                        b.value
                    ));
                }
                prev = b.value;
            }
            let last = buckets.last().expect("non-empty group");
            let le = last
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.as_str());
            if le != Some("+Inf") {
                return Err(format!(
                    "{bucket_name}{key}: last bucket is not le=\"+Inf\""
                ));
            }
            // the matching _count must exist and equal the +Inf bucket
            let mut rest: Vec<_> = last
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .cloned()
                .collect();
            rest.sort();
            let count = exp.samples.iter().find(|s| {
                let mut sl = s.labels.clone();
                sl.sort();
                s.name == count_name && sl == rest
            });
            match count {
                Some(c) if c.value == last.value => {}
                Some(c) => {
                    return Err(format!(
                        "{count_name}{key}: count {} != +Inf bucket {}",
                        c.value, last.value
                    ))
                }
                None => return Err(format!("{count_name}{key}: missing _count sample")),
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrip() {
        let hostile = "a\\b\"c\nd";
        assert_eq!(unescape_label(&escape_label(hostile)).unwrap(), hostile);
    }

    #[test]
    fn sample_with_hostile_labels_parses() {
        let s = Sample::new("m_total", &[("model", "a\"b,c}d\\e")], 3.5);
        let text = render(&[Family {
            name: "m_total".into(),
            help: "h".into(),
            kind: MetricKind::Counter,
            samples: vec![s.clone()],
        }]);
        let exp = parse_exposition(&text).unwrap();
        assert_eq!(exp.samples, vec![s]);
        assert_eq!(
            exp.types,
            vec![("m_total".to_string(), "counter".to_string())]
        );
    }

    #[test]
    fn infinity_value_roundtrips() {
        let text = "b_bucket{le=\"+Inf\"} 4\n";
        let exp = parse_exposition(text).unwrap();
        assert_eq!(exp.samples[0].value, 4.0);
        assert_eq!(
            exp.samples[0].labels,
            vec![("le".to_string(), "+Inf".to_string())]
        );
    }

    #[test]
    fn validator_rejects_duplicates_and_empty_families() {
        let dup = "# TYPE x counter\nx 1\nx 2\n";
        assert!(validate_exposition(dup).unwrap_err().contains("duplicate"));
        let empty = "# TYPE y counter\n";
        assert!(validate_exposition(empty)
            .unwrap_err()
            .contains("no samples"));
    }

    #[test]
    fn validator_enforces_histogram_shape() {
        let non_cumulative = "# TYPE h histogram\n\
                              h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_count 3\nh_sum 1\n";
        assert!(validate_exposition(non_cumulative)
            .unwrap_err()
            .contains("cumulative"));
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_count 5\nh_sum 1\n";
        assert!(validate_exposition(no_inf).unwrap_err().contains("+Inf"));
        let count_mismatch = "# TYPE h histogram\n\
                              h_bucket{le=\"+Inf\"} 5\nh_count 4\nh_sum 1\n";
        assert!(validate_exposition(count_mismatch)
            .unwrap_err()
            .contains("!="));
        let ok = "# TYPE h histogram\n\
                  h_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_count 5\nh_sum 1.25\n";
        validate_exposition(ok).unwrap();
    }

    #[test]
    fn http_response_is_well_formed() {
        let body = "# TYPE x counter\nx 1\n";
        let resp = http_ok(body);
        let text = String::from_utf8(resp).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains(&format!("Content-Length: {}\r\n", body.len())));
        assert!(text.ends_with(body));
    }
}
