//! # c2nn-serve — a batching simulation service
//!
//! The paper's core observation is that a compiled circuit-as-network
//! evaluates *B independent testbenches* in one forward pass: testbenches
//! are just batch lanes. This crate turns that observation into a serving
//! architecture:
//!
//! ```text
//!  clients ──TCP──▶ server ──▶ registry ──▶ per-model scheduler ──▶ pool
//!  (N conns)       (frames)   (LRU cache)   (micro-batching)     (threads)
//! ```
//!
//! * [`protocol`] — a codec layer over TCP: newline-delimited JSON frames
//!   and a length-prefixed binary format carrying packed bit planes, with
//!   per-frame codec negotiation by first-byte sniffing; every frame is
//!   untrusted input and decodes without panicking.
//! * [`registry`] — loads models through full structural validation, caches
//!   them under a byte budget with LRU eviction.
//! * [`scheduler`] — per-model micro-batching: requests queue until
//!   `max_batch` lanes accumulate or a `max_wait` deadline expires, then
//!   run as **one** batched forward pass per cycle; per-lane outputs
//!   scatter back to their clients.
//! * [`server`] / [`client`] — `std::net` TCP endpoints; the server is
//!   plain threads + read timeouts, no async runtime.
//! * [`stats`] — relaxed atomic counters and a log-bucketed latency
//!   histogram per model, served over the same protocol.
//! * [`signal`] — SIGINT → graceful shutdown, without a libc dependency.
//! * [`admission`] — bounded in-flight budgets, a pressure ladder, and
//!   typed `Overloaded`/`ShuttingDown` rejections: overload is a contract,
//!   not a timeout.
//! * [`chaos`] — deterministic, seeded fault injection (worker panics,
//!   scheduler stalls, hostile clients) for the chaos test suite and the
//!   CI `chaos-smoke` job.
//!
//! Batched forward passes execute on the persistent worker pool in
//! `c2nn-tensor` ([`c2nn_tensor::Pool`]), so serving steady-state does no
//! thread spawning: not per request, not per batch, not per layer.

#![forbid(unsafe_op_in_unsafe_fn)]
#![deny(missing_docs)]

pub mod admission;
pub mod chaos;
pub mod client;
#[cfg(target_os = "linux")]
pub mod event_loop;
pub mod loadgen;
pub mod metrics;
pub mod protocol;
pub mod registry;
pub mod scheduler;
pub mod server;
pub mod signal;
pub mod stats;

pub use admission::{Admission, AdmitError, Pressure, SimPermit};
pub use chaos::{Chaos, ChaosConfig, Rng};
pub use client::{Backoff, Client, ClientError, StatsSnapshot};
pub use loadgen::{ArrivalMode, LoadReport, LoadgenConfig};
pub use metrics::IoGauges;
pub use protocol::{
    BackendSelectionReport, BinaryCodec, Codec, Frame, FrameBuffer, FrameLimits, FrameReader,
    JsonCodec, ModelStatsReport, ProtocolError, Request, Response, ServerStatsReport, SimOutputs,
    StimPayload, WireFormat, MAX_FRAME, PROTOCOL_VERSION,
};
pub use registry::{Registry, RegistryConfig};
pub use scheduler::{BatchConfig, ServedModel, SimFailure, SimOutput, StimData};
pub use server::{spawn_server, IoModel, ServerConfig, ServerHandle, WirePolicy};
