//! Nonblocking epoll event loop: one thread, thousands of connections.
//!
//! The threaded server spends a thread (stack, scheduler slot, context
//! switches) per connection; past a few hundred clients the host is
//! switching, not serving. This module replaces accept-and-spawn with a
//! single readiness loop over raw `epoll` syscalls (declared `extern "C"`
//! like [`crate::signal`]'s `signal(2)` hook — std already links libc, so
//! no new dependency):
//!
//! * **Level-triggered readiness** over nonblocking sockets. Interest is
//!   the state machine: `EPOLLIN` is dropped while a request is pending or
//!   the write buffer is over its high watermark, so the loop never spins
//!   on data it cannot use — backpressure is expressed to the kernel, and
//!   through TCP flow control, to the client.
//! * **Per-connection state machines** ([`Conn`]) feeding the same
//!   [`FrameBuffer`] framing, registry dispatch, admission control, and
//!   coalescing scheduler as the threaded path. One request is in flight
//!   per connection (the protocol is request/response), so ordering needs
//!   no bookkeeping.
//! * **Completion queue + self-pipe**: a `sim` is submitted with
//!   [`crate::scheduler::ServedModel::submit_with`]; the batcher's hook
//!   pushes the finished [`Response`] onto a mutex'd queue and writes one
//!   byte to a `UnixStream` pair the loop polls — the loop never blocks on
//!   a reply. Tokens carry a generation tag so a completion for a closed,
//!   recycled slot is discarded instead of answering a stranger.
//! * **Bounded write buffers**: replies queue in a per-connection buffer;
//!   past [`WRITE_HIGH_WATERMARK`] reads pause until the client drains it
//!   below [`WRITE_LOW_WATERMARK`]. A client that never reads stalls
//!   itself, not the server.
//! * **HTTP sniffing**: a connection whose first four bytes are `GET ` is
//!   answered as an HTTP/1.1 scrape (`/metrics` → Prometheus exposition,
//!   anything else → 404) and closed; anything else is protocol frames,
//!   codec-sniffed per frame. A frame can never start with `GET ` (JSON
//!   frames open with `{`, binary frames with the `0xC2` magic), so the
//!   sniff cannot misfire.
//! * **Drain, not cliff**: shutdown closes the listener, flips admission
//!   to draining, answers frames arriving within the configured
//!   [`FrameLimits::drain_window`] with a typed `ShuttingDown`, waits for
//!   every pending sim's completion (the batcher always replies), flushes,
//!   and half-closes — FIN, never RST.

use crate::admission::AdmitError;
use crate::metrics::{self, IoGauges};
use crate::protocol::{
    Frame, FrameBuffer, FrameLimits, Request, Response, StimPayload, WireFormat, PROTOCOL_VERSION,
};
use crate::registry::Registry;
use crate::scheduler::StimData;
use crate::server::{sim_reply, WirePolicy};
use crate::signal;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Pause reads once this many reply bytes are queued unread by the client.
pub const WRITE_HIGH_WATERMARK: usize = 256 << 10;
/// Resume reads once the queued reply bytes drop below this.
pub const WRITE_LOW_WATERMARK: usize = 64 << 10;
/// Hard cap on post-drain flushing toward clients that stopped reading.
const DRAIN_FLUSH_CAP: Duration = Duration::from_secs(5);
/// epoll_wait timeout: the poll tick for the shutdown/SIGINT flags.
const TICK_MS: i32 = 50;
/// Per-readiness-event read cap so one firehose client cannot starve the
/// rest of the loop (level-triggered epoll re-arms what is left).
const READ_BUDGET: usize = 256 << 10;
/// An HTTP request-head larger than this is hostile; close.
const MAX_HTTP_HEAD: usize = 16 << 10;

// --- raw epoll ------------------------------------------------------------

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// The kernel's `struct epoll_event`. On x86_64 the kernel ABI packs it
/// (no padding between `events` and `data`); elsewhere it is naturally
/// aligned.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Default)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// Owned epoll instance; closed on drop.
struct Epoll {
    fd: i32,
}

impl Epoll {
    fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall, no pointers passed.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it out.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn del(&self, fd: i32) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Wait for readiness; returns `(events, data)` pairs (copied out of
    /// the packed kernel structs).
    fn wait(&self, buf: &mut Vec<(u32, u64)>, timeout_ms: i32) -> io::Result<()> {
        buf.clear();
        let mut events = [EpollEvent::default(); 256];
        // SAFETY: the buffer is valid for `maxevents` entries for the call.
        let n = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(()); // signal tick; the caller re-polls its flags
            }
            return Err(e);
        }
        for ev in &events[..n as usize] {
            // copy out of the (possibly packed) struct — no references taken
            let (mask, data) = (ev.events, ev.data);
            buf.push((mask, data));
        }
        Ok(())
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: fd is owned by this instance and closed exactly once.
        unsafe {
            close(self.fd);
        }
    }
}

// --- connection state machine ---------------------------------------------

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKE: u64 = u64::MAX - 1;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// First bytes not seen yet: HTTP or framed protocol?
    Sniff,
    /// Codec-sniffed protocol frames (JSON lines or binary).
    Framed,
    /// An HTTP scrape: answer one request, then close.
    Http,
}

struct Conn {
    stream: TcpStream,
    frames: FrameBuffer,
    wbuf: Vec<u8>,
    wpos: usize,
    mode: Mode,
    /// Codec of the most recent popped frame: replies (including drain
    /// and framing-error replies) answer in it.
    wire: WireFormat,
    /// A sim/load is in flight; reads pause and further frames wait.
    pending: bool,
    /// Flush `wbuf`, then close (protocol violation, HTTP done, shutdown).
    closing: bool,
    /// Reads paused because `wbuf` crossed the high watermark.
    throttled: bool,
    /// The client half-closed; serve what is buffered, then close.
    eof: bool,
    /// Interest mask currently registered with epoll.
    interest: u32,
}

impl Conn {
    fn new(stream: TcpStream, limits: FrameLimits) -> Conn {
        Conn {
            stream,
            frames: FrameBuffer::with_limits(limits),
            wbuf: Vec::new(),
            wpos: 0,
            mode: Mode::Sniff,
            wire: WireFormat::Json,
            pending: false,
            closing: false,
            throttled: false,
            eof: false,
            interest: 0,
        }
    }

    /// Reply bytes queued but not yet accepted by the kernel.
    fn outstanding(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    fn desired_interest(&self) -> u32 {
        let mut ev = EPOLLRDHUP;
        if !self.pending && !self.closing && !self.throttled && !self.eof {
            ev |= EPOLLIN;
        }
        if self.outstanding() > 0 {
            ev |= EPOLLOUT;
        }
        ev
    }
}

/// Generation-tagged connection slab. A token is `(gen << 32) | slot`;
/// removing a connection bumps the slot's generation, so completions
/// addressed to a closed connection miss instead of hitting its successor.
#[derive(Default)]
struct Slab {
    slots: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
}

impl Slab {
    fn insert(&mut self, conn: Conn) -> usize {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Some(conn);
                slot
            }
            None => {
                self.slots.push(Some(conn));
                self.gens.push(0);
                self.slots.len() - 1
            }
        }
    }

    fn token(&self, slot: usize) -> u64 {
        ((self.gens[slot] as u64) << 32) | slot as u64
    }

    fn slot_of(&self, token: u64) -> Option<usize> {
        let slot = (token & u32::MAX as u64) as usize;
        let gen = (token >> 32) as u32;
        (slot < self.slots.len() && self.gens[slot] == gen && self.slots[slot].is_some())
            .then_some(slot)
    }

    fn get_mut(&mut self, slot: usize) -> Option<&mut Conn> {
        self.slots.get_mut(slot).and_then(Option::as_mut)
    }

    fn remove(&mut self, slot: usize) -> Option<Conn> {
        let conn = self.slots.get_mut(slot).and_then(Option::take)?;
        self.gens[slot] = self.gens[slot].wrapping_add(1);
        self.free.push(slot);
        Some(conn)
    }

    fn any(&self, f: impl Fn(&Conn) -> bool) -> bool {
        self.slots.iter().flatten().any(f)
    }

    fn live_slots(&self) -> Vec<usize> {
        (0..self.slots.len())
            .filter(|&i| self.slots[i].is_some())
            .collect()
    }
}

// --- completion queue ------------------------------------------------------

struct Completion {
    token: u64,
    response: Response,
}

/// Batcher → event loop handoff: results queue here and one byte on the
/// self-pipe wakes `epoll_wait`. Push never blocks beyond the mutex.
struct Completions {
    queue: Mutex<Vec<Completion>>,
    wake: UnixStream,
    io: Arc<IoGauges>,
}

impl Completions {
    fn push(&self, token: u64, response: Response) {
        self.queue
            .lock()
            .unwrap()
            .push(Completion { token, response });
        self.io
            .completion_queue_depth
            .fetch_add(1, Ordering::Relaxed);
        // A full pipe is fine: the loop is already overdue for a wake and
        // drains the queue on every iteration regardless.
        let _ = (&self.wake).write(&[1u8]);
    }

    fn drain(&self) -> Vec<Completion> {
        let drained = std::mem::take(&mut *self.queue.lock().unwrap());
        self.io
            .completion_queue_depth
            .fetch_sub(drained.len() as u64, Ordering::Relaxed);
        drained
    }
}

/// Shared dispatch context (everything per-frame handling needs besides
/// the connection itself).
struct Ctx {
    registry: Arc<Registry>,
    io: Arc<IoGauges>,
    completions: Arc<Completions>,
    shutdown: Arc<AtomicBool>,
    limits: FrameLimits,
    wire: WirePolicy,
}

// --- the loop --------------------------------------------------------------

/// Run the event loop until shutdown (flag, SIGINT, or a `shutdown`
/// frame), then drain. Mirrors the threaded `accept_loop`'s contract;
/// called on the server's accept thread.
pub fn run_event_loop(
    listener: TcpListener,
    registry: Arc<Registry>,
    shutdown: Arc<AtomicBool>,
    limits: FrameLimits,
    wire: WirePolicy,
) {
    if let Err(e) = run_inner(listener, registry, shutdown, limits, wire) {
        eprintln!("c2nn-serve event loop failed: {e}");
    }
}

fn run_inner(
    listener: TcpListener,
    registry: Arc<Registry>,
    shutdown: Arc<AtomicBool>,
    limits: FrameLimits,
    wire: WirePolicy,
) -> io::Result<()> {
    let ep = Epoll::new()?;
    ep.ctl(EPOLL_CTL_ADD, listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
    let (wake_rx, wake_tx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;
    ep.ctl(EPOLL_CTL_ADD, wake_rx.as_raw_fd(), EPOLLIN, TOKEN_WAKE)?;

    let io = Arc::clone(registry.gauges());
    let completions = Arc::new(Completions {
        queue: Mutex::new(Vec::new()),
        wake: wake_tx,
        io: Arc::clone(&io),
    });
    let ctx = Ctx {
        registry: Arc::clone(&registry),
        io: Arc::clone(&io),
        completions: Arc::clone(&completions),
        shutdown: Arc::clone(&shutdown),
        limits,
        wire,
    };
    let mut slab = Slab::default();
    let mut events: Vec<(u32, u64)> = Vec::new();

    while !shutdown.load(Ordering::SeqCst) && !signal::interrupted() {
        ep.wait(&mut events, TICK_MS)?;
        io.readiness_wakeups_total.fetch_add(1, Ordering::Relaxed);
        for &(mask, token) in &events {
            match token {
                TOKEN_LISTENER => accept_ready(&listener, &ep, &mut slab, &io, limits),
                TOKEN_WAKE => drain_wake_pipe(&wake_rx),
                token => {
                    if let Some(slot) = slab.slot_of(token) {
                        on_conn_event(&ep, &mut slab, slot, mask, &ctx);
                    }
                }
            }
        }
        for c in completions.drain() {
            deliver_completion(&ep, &mut slab, c, &ctx);
        }
    }

    // --- drain: stop accepting, refuse new work typed, settle in-flight ---
    ep.del(listener.as_raw_fd());
    drop(listener);
    registry.admission().begin_drain();
    shutdown.store(true, Ordering::SeqCst);
    drain_phase(&ep, &mut slab, &wake_rx, &completions, &ctx)?;
    Ok(())
}

fn accept_ready(
    listener: &TcpListener,
    ep: &Epoll,
    slab: &mut Slab,
    io: &IoGauges,
    limits: FrameLimits,
) {
    // bounded batch per wake so a connect storm cannot starve live conns
    for _ in 0..64 {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let fd = stream.as_raw_fd();
                let slot = slab.insert(Conn::new(stream, limits));
                let token = slab.token(slot);
                let conn = slab.get_mut(slot).expect("just inserted");
                conn.interest = conn.desired_interest();
                if ep.ctl(EPOLL_CTL_ADD, fd, conn.interest, token).is_err() {
                    slab.remove(slot);
                    continue;
                }
                io.accepted_total.fetch_add(1, Ordering::Relaxed);
                io.open_connections.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break, // transient (e.g. aborted connection)
        }
    }
}

fn drain_wake_pipe(mut wake_rx: &UnixStream) {
    let mut buf = [0u8; 64];
    while matches!(wake_rx.read(&mut buf), Ok(n) if n > 0) {}
}

fn on_conn_event(ep: &Epoll, slab: &mut Slab, slot: usize, mask: u32, ctx: &Ctx) {
    let token = slab.token(slot);
    let close_now = {
        let conn = match slab.get_mut(slot) {
            Some(c) => c,
            None => return,
        };
        if mask & (EPOLLERR | EPOLLHUP) != 0 {
            true
        } else {
            let mut dead = false;
            if mask & EPOLLOUT != 0 {
                dead = flush(conn, ctx).is_err();
            }
            if !dead && mask & (EPOLLIN | EPOLLRDHUP) != 0 && conn.interest & EPOLLIN != 0 {
                match read_some(conn) {
                    Ok(eof) => {
                        conn.eof |= eof;
                        process_conn(conn, token, ctx);
                        dead = flush(conn, ctx).is_err();
                    }
                    Err(_) => dead = true,
                }
            }
            dead || should_close(conn)
        }
    };
    if close_now {
        remove_conn(ep, slab, slot, ctx);
    } else {
        sync_interest(ep, slab, slot);
    }
}

fn deliver_completion(ep: &Epoll, slab: &mut Slab, c: Completion, ctx: &Ctx) {
    let Some(slot) = slab.slot_of(c.token) else {
        return; // connection closed while the sim ran; reply evaporates
    };
    let token = c.token;
    let close_now = {
        let conn = slab.get_mut(slot).expect("slot_of checked");
        conn.pending = false;
        enqueue_response(conn, &c.response, ctx);
        let mut dead = flush(conn, ctx).is_err();
        if !dead {
            // a pipelining client may have the next frame already buffered
            process_conn(conn, token, ctx);
            dead = flush(conn, ctx).is_err();
        }
        dead || should_close(conn)
    };
    if close_now {
        remove_conn(ep, slab, slot, ctx);
    } else {
        sync_interest(ep, slab, slot);
    }
}

fn remove_conn(ep: &Epoll, slab: &mut Slab, slot: usize, ctx: &Ctx) {
    if let Some(conn) = slab.remove(slot) {
        ep.del(conn.stream.as_raw_fd());
        let _ = conn.stream.shutdown(Shutdown::Write); // FIN, not RST
        ctx.io.open_connections.fetch_sub(1, Ordering::Relaxed);
    }
}

fn sync_interest(ep: &Epoll, slab: &mut Slab, slot: usize) {
    let token = slab.token(slot);
    if let Some(conn) = slab.get_mut(slot) {
        let want = conn.desired_interest();
        if want != conn.interest {
            let fd = conn.stream.as_raw_fd();
            conn.interest = want;
            let _ = ep.ctl(EPOLL_CTL_MOD, fd, want, token);
        }
    }
}

/// Read until `WouldBlock`, EOF, or the per-event budget. `Ok(true)` = EOF.
fn read_some(conn: &mut Conn) -> io::Result<bool> {
    let mut chunk = [0u8; 16384];
    let mut total = 0usize;
    loop {
        match (&conn.stream).read(&mut chunk) {
            Ok(0) => return Ok(true),
            Ok(n) => {
                conn.frames.push(&chunk[..n]);
                total += n;
                if total >= READ_BUDGET {
                    return Ok(false); // level-triggered epoll re-arms
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Write queued reply bytes until `WouldBlock` or empty; manages the
/// backpressure watermark state.
fn flush(conn: &mut Conn, ctx: &Ctx) -> io::Result<()> {
    while conn.wpos < conn.wbuf.len() {
        match (&conn.stream).write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    } else if conn.wpos > (64 << 10) {
        conn.wbuf.drain(..conn.wpos);
        conn.wpos = 0;
    }
    if conn.throttled && conn.outstanding() < WRITE_LOW_WATERMARK {
        conn.throttled = false;
    }
    let _ = ctx; // watermark counters are charged at enqueue time
    Ok(())
}

fn should_close(conn: &mut Conn) -> bool {
    if conn.outstanding() > 0 {
        return false; // flush first; epoll drives the rest out
    }
    if conn.closing {
        return true;
    }
    if conn.eof {
        if conn.pending {
            return false; // half-closed client still gets its reply
        }
        // complete frames still buffered keep the connection; a bare
        // partial frame at EOF is the threaded path's mid-frame close
        // (framing defects also count as actionable — the drain loop must
        // still pop them to answer with a typed error before FIN)
        return !conn.frames.has_complete_frame();
    }
    false
}

/// Encode `resp` in the connection's current codec and queue it.
fn enqueue_response(conn: &mut Conn, resp: &Response, ctx: &Ctx) {
    let encoded = conn.wire.codec().encode_response(resp);
    ctx.io.record_frame_written(conn.wire, encoded.len() as u64);
    conn.wbuf.extend_from_slice(&encoded);
    if !conn.throttled && conn.outstanding() > WRITE_HIGH_WATERMARK {
        conn.throttled = true;
        ctx.io
            .write_backpressure_total
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// Advance one connection's state machine as far as buffered bytes allow.
fn process_conn(conn: &mut Conn, token: u64, ctx: &Ctx) {
    loop {
        if conn.closing {
            return;
        }
        match conn.mode {
            Mode::Sniff => {
                let head = conn.frames.peek();
                if head.is_empty() {
                    return;
                }
                let n = head.len().min(4);
                if head[..n] == b"GET "[..n] {
                    if n < 4 {
                        return; // prefix still ambiguous; wait for bytes
                    }
                    conn.mode = Mode::Http;
                } else {
                    conn.mode = Mode::Framed;
                }
            }
            Mode::Http => {
                try_http(conn, ctx);
                return;
            }
            Mode::Framed => {
                if conn.pending {
                    return; // strict request/response: next frame waits
                }
                match conn.frames.next_frame() {
                    Ok(Some(frame)) => {
                        conn.wire = frame.wire;
                        if !ctx.wire.allows(frame.wire) {
                            // typed refusal in the client's codec, then
                            // close — never a hang
                            ctx.io.record_frame_read(frame.wire, frame.len() as u64);
                            enqueue_response(conn, &ctx.wire.rejection(), ctx);
                            conn.closing = true;
                            return;
                        }
                        handle_frame(conn, token, frame, ctx)
                    }
                    Ok(None) => return,
                    Err(e) => {
                        // over-long or corrupt framing: the byte stream is
                        // no longer trustworthy
                        enqueue_response(
                            conn,
                            &Response::Error {
                                message: e.to_string(),
                            },
                            ctx,
                        );
                        conn.closing = true;
                        return;
                    }
                }
            }
        }
    }
}

fn headers_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))
}

/// Answer one HTTP request (the scrape path) and mark the connection for
/// close — `Connection: close` semantics, the scraper reads to EOF.
fn try_http(conn: &mut Conn, ctx: &Ctx) {
    let head = conn.frames.peek();
    let Some(end) = headers_end(head) else {
        if head.len() > MAX_HTTP_HEAD {
            conn.closing = true; // hostile header stream; nothing to say
        }
        return;
    };
    let request_line = String::from_utf8_lossy(&head[..end]);
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let body = if path == "/metrics" || path.starts_with("/metrics?") {
        ctx.io.http_scrapes_total.fetch_add(1, Ordering::Relaxed);
        metrics::http_ok(&metrics::render_for(&ctx.registry))
    } else {
        metrics::http_not_found()
    };
    conn.frames.clear();
    conn.wbuf.extend_from_slice(&body);
    conn.closing = true;
}

fn admit_error_response(e: AdmitError) -> Response {
    match e {
        AdmitError::Overloaded { retry_after_ms } => Response::Overloaded { retry_after_ms },
        AdmitError::ShuttingDown => Response::ShuttingDown,
    }
}

/// Dispatch one decoded frame. Cheap requests answer inline; `sim` hands
/// its lane to the scheduler with a completion hook; `load` runs on a
/// short-lived thread (rare, admission-gated, but parse+validate is too
/// heavy to stall the loop).
fn handle_frame(conn: &mut Conn, token: u64, frame: Frame, ctx: &Ctx) {
    ctx.io.record_frame_read(frame.wire, frame.len() as u64);
    let request = match frame.decode_request() {
        Ok(r) => r,
        Err(e) => {
            enqueue_response(
                conn,
                &Response::Error {
                    message: e.to_string(),
                },
                ctx,
            );
            return;
        }
    };
    match request {
        Request::Ping => enqueue_response(
            conn,
            &Response::Pong {
                version: PROTOCOL_VERSION,
            },
            ctx,
        ),
        Request::Stats => enqueue_response(
            conn,
            &Response::Stats {
                models: ctx.registry.stats(),
                server: ctx.registry.server_report(),
            },
            ctx,
        ),
        Request::Shutdown => {
            enqueue_response(conn, &Response::ShuttingDown, ctx);
            conn.closing = true;
            ctx.registry.admission().begin_drain();
            ctx.shutdown.store(true, Ordering::SeqCst);
        }
        Request::Load {
            name,
            model,
            deadline_ms,
        } => start_load(conn, token, name, model, deadline_ms, ctx),
        Request::Sim {
            model,
            stim,
            deadline_ms,
        } => start_sim(conn, token, &model, stim, deadline_ms, ctx),
    }
}

fn start_load(
    conn: &mut Conn,
    token: u64,
    name: String,
    model: Vec<u8>,
    deadline_ms: Option<u64>,
    ctx: &Ctx,
) {
    if let Err(e) = ctx.registry.admission().try_admit_load() {
        enqueue_response(conn, &admit_error_response(e), ctx);
        return;
    }
    if deadline_ms == Some(0) {
        enqueue_response(conn, &Response::DeadlineExceeded, ctx);
        return;
    }
    conn.pending = true;
    let registry = Arc::clone(&ctx.registry);
    let completions = Arc::clone(&ctx.completions);
    let spawned = std::thread::Builder::new()
        .name("c2nn-load".to_string())
        .spawn(move || {
            let response = match registry.load(&name, &model) {
                Ok(model) => Response::Loaded {
                    name,
                    bytes: model.bytes as u64,
                },
                Err(message) => Response::Error { message },
            };
            completions.push(token, response);
        });
    if spawned.is_err() {
        conn.pending = false;
        enqueue_response(
            conn,
            &Response::Error {
                message: "server cannot spawn load worker".into(),
            },
            ctx,
        );
    }
}

fn start_sim(
    conn: &mut Conn,
    token: u64,
    model: &str,
    stim: StimPayload,
    deadline_ms: Option<u64>,
    ctx: &Ctx,
) {
    let received = Instant::now();
    let permit = match ctx.registry.admission().try_admit_sim() {
        Ok(p) => p,
        Err(e) => {
            enqueue_response(conn, &admit_error_response(e), ctx);
            return;
        }
    };
    let Some(served) = ctx.registry.get(model) else {
        enqueue_response(
            conn,
            &Response::Error {
                message: format!("unknown model '{model}' (load it first)"),
            },
            ctx,
        );
        return;
    };
    if let Err(e) = ctx
        .registry
        .admission()
        .check_model_budget(served.stats.queue_depth.load(Ordering::Relaxed))
    {
        enqueue_response(conn, &admit_error_response(e), ctx);
        return;
    }
    let pi = served.nn.num_primary_inputs;
    let data: StimData = match stim {
        StimPayload::Text(text) => match c2nn_core::parse_stim(&text, pi) {
            Ok(s) => s.into(),
            Err(e) => {
                enqueue_response(
                    conn,
                    &Response::Error {
                        message: e.to_string(),
                    },
                    ctx,
                );
                return;
            }
        },
        // packed planes ride to the scheduler untouched — the binary hot
        // path never expands to Vec<bool> on the server side
        StimPayload::Packed(planes) => {
            if planes.features() != pi {
                enqueue_response(
                    conn,
                    &Response::Error {
                        message: format!(
                            "stimulus planes carry {} input bits; model '{model}' expects {pi}",
                            planes.features()
                        ),
                    },
                    ctx,
                );
                return;
            }
            planes.into()
        }
    };
    let deadline = deadline_ms.map(|ms| received + Duration::from_millis(ms));
    conn.pending = true;
    let completions = Arc::clone(&ctx.completions);
    served.submit_with(
        data,
        deadline,
        Box::new(move |result| {
            // runs on the batcher thread: format, enqueue, wake — no blocking
            completions.push(token, sim_reply(result));
            drop(permit); // budget released only once the reply is queued
        }),
    );
}

// --- drain -----------------------------------------------------------------

/// Mirror of the threaded path's `drain_connection`, loop-wide: answer
/// frames with `ShuttingDown` for [`FrameLimits::drain_window`], wait out
/// pending sims (their completions always arrive), flush, half-close
/// everything.
fn drain_phase(
    ep: &Epoll,
    slab: &mut Slab,
    wake_rx: &UnixStream,
    completions: &Arc<Completions>,
    ctx: &Ctx,
) -> io::Result<()> {
    // idle lines close immediately; mid-send or mid-sim lines get the window
    for slot in slab.live_slots() {
        let done = slab
            .get_mut(slot)
            .is_some_and(|c| !c.pending && c.outstanding() == 0 && c.frames.is_empty());
        if done {
            remove_conn(ep, slab, slot, ctx);
        }
    }
    let window_end = Instant::now() + ctx.limits.drain_window;
    let hard_end = window_end + DRAIN_FLUSH_CAP;
    let mut events: Vec<(u32, u64)> = Vec::new();
    loop {
        let pending = slab.any(|c| c.pending);
        let unflushed = slab.any(|c| c.outstanding() > 0);
        let now = Instant::now();
        if now >= hard_end || (now >= window_end && !pending && !unflushed) {
            break;
        }
        ep.wait(&mut events, 20)?;
        for &(mask, token) in &events {
            if token == TOKEN_WAKE {
                drain_wake_pipe(wake_rx);
                continue;
            }
            let Some(slot) = slab.slot_of(token) else {
                continue;
            };
            let close_now = {
                let conn = slab.get_mut(slot).expect("slot_of checked");
                let mut dead = mask & (EPOLLERR | EPOLLHUP) != 0;
                if !dead && mask & EPOLLOUT != 0 {
                    dead = flush(conn, ctx).is_err();
                }
                if !dead && mask & (EPOLLIN | EPOLLRDHUP) != 0 && conn.interest & EPOLLIN != 0 {
                    match read_some(conn) {
                        Ok(eof) => {
                            conn.eof |= eof;
                            // whatever the request was, the drain answer is
                            // the same typed reply, in the frame's codec
                            while let Ok(Some(frame)) = conn.frames.next_frame() {
                                conn.wire = frame.wire;
                                enqueue_response(conn, &Response::ShuttingDown, ctx);
                            }
                            dead = flush(conn, ctx).is_err();
                        }
                        Err(_) => dead = true,
                    }
                }
                dead || (conn.outstanding() == 0 && conn.eof && !conn.pending)
            };
            if close_now {
                remove_conn(ep, slab, slot, ctx);
            } else {
                sync_interest(ep, slab, slot);
            }
        }
        for c in completions.drain() {
            let Some(slot) = slab.slot_of(c.token) else {
                continue;
            };
            let close_now = {
                let conn = slab.get_mut(slot).expect("slot_of checked");
                conn.pending = false;
                enqueue_response(conn, &c.response, ctx);
                flush(conn, ctx).is_err()
            };
            if close_now {
                remove_conn(ep, slab, slot, ctx);
            } else {
                sync_interest(ep, slab, slot);
            }
        }
    }
    // final sweep: one last flush attempt, then FIN everywhere
    for slot in slab.live_slots() {
        if let Some(conn) = slab.get_mut(slot) {
            let _ = flush(conn, ctx);
        }
        remove_conn(ep, slab, slot, ctx);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_tokens_are_generation_tagged() {
        let mut slab = Slab::default();
        let pair = UnixStream::pair().unwrap();
        drop(pair);
        // Conn needs a TcpStream; fabricate one via a loopback listener.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let c1 = TcpStream::connect(addr).unwrap();
        let (s1, _) = listener.accept().unwrap();
        let slot = slab.insert(Conn::new(s1, FrameLimits::default()));
        let tok = slab.token(slot);
        assert_eq!(slab.slot_of(tok), Some(slot));
        slab.remove(slot);
        assert_eq!(slab.slot_of(tok), None, "stale token must miss");
        let c2 = TcpStream::connect(addr).unwrap();
        let (s2, _) = listener.accept().unwrap();
        let slot2 = slab.insert(Conn::new(s2, FrameLimits::default()));
        assert_eq!(slot2, slot, "slot is recycled");
        assert_ne!(slab.token(slot2), tok, "with a fresh generation");
        drop((c1, c2));
    }

    #[test]
    fn sniff_discriminates_http_from_frames() {
        // complete-frame-first can't collide: frames are JSON objects
        assert_eq!(&b"GET "[..2], b"GE");
        for (bytes, is_http) in [
            (&b"GET /metrics HTTP/1.1\r\n\r\n"[..], true),
            (&b"{\"op\":\"ping\"}\n"[..], false),
            (&b"GETX"[..], false),
            (&b"GET\n"[..], false),
        ] {
            let n = bytes.len().min(4);
            let sniffed_http = bytes[..n] == b"GET "[..n] && n >= 4;
            assert_eq!(sniffed_http, is_http, "{bytes:?}");
        }
    }

    #[test]
    fn headers_end_finds_both_separators() {
        assert_eq!(
            headers_end(b"GET / HTTP/1.1\r\nHost: x\r\n\r\nbody"),
            Some(27)
        );
        assert_eq!(headers_end(b"GET / HTTP/1.0\n\n"), Some(16));
        assert_eq!(headers_end(b"GET / HTTP/1.1\r\nHost"), None);
    }
}
