//! Minimal SIGINT hook without a libc dependency.
//!
//! The server polls [`interrupted`] from its accept loop; the handler just
//! flips an `AtomicBool`, which is the only async-signal-safe thing worth
//! doing. On non-unix targets installation is a no-op and the flag only
//! ever changes through [`trigger`] (used by tests and the in-process
//! `shutdown` request path).

use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// Has SIGINT (or a programmatic [`trigger`]) been observed?
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Set the interrupt flag, as if SIGINT had arrived.
pub fn trigger() {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Clear the flag (tests re-use the process-wide static).
pub fn reset() {
    INTERRUPTED.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
extern "C" fn on_sigint(_sig: i32) {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Install the SIGINT handler. Safe to call more than once.
#[cfg(unix)]
pub fn install_sigint_handler() {
    const SIGINT: i32 = 2;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    // SAFETY: `signal(2)` with a handler that only stores to an atomic is
    // async-signal-safe; no Rust state is touched from the handler.
    unsafe {
        signal(SIGINT, on_sigint);
    }
}

/// No signals to hook on non-unix targets; rely on [`trigger`].
#[cfg(not(unix))]
pub fn install_sigint_handler() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_and_reset() {
        reset();
        assert!(!interrupted());
        trigger();
        assert!(interrupted());
        reset();
        assert!(!interrupted());
    }
}
