//! Cross-codec differential: every Table I suite circuit on every
//! registered backend, driven over **both** wire codecs (and both
//! stimulus shapes) against a live server, must agree bit-for-bit with
//! the gate-level reference simulator.
//!
//! This is the acceptance gate for the binary codec: the packed wire
//! form is only allowed to change how bits travel, never which bits.

use c2nn_core::{compile, CompileOptions};
use c2nn_hal::conformance::suite_workloads;
use c2nn_hal::{BackendRegistry, Choice};
use c2nn_refsim::CycleSim;
use c2nn_serve::scheduler::BatchConfig;
use c2nn_serve::server::{spawn_server, ServerConfig};
use c2nn_serve::{Client, RegistryConfig, WireFormat};
use std::time::Duration;

/// Lockstep cycles per circuit — matches the HAL conformance suite.
const CYCLES: usize = 6;

struct Lcg(u64);

impl Lcg {
    fn bit(&mut self) -> bool {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 40 & 1 == 1
    }
}

/// Per-cycle input lanes for a circuit, deterministic per (circuit, seed).
fn stimulus(width: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut rng = Lcg(seed);
    (0..CYCLES)
        .map(|_| (0..width).map(|_| rng.bit()).collect())
        .collect()
}

/// `.stim` text for the lanes: one MSB-first line per cycle (input 0 is
/// the last character).
fn stim_text(lanes: &[Vec<bool>]) -> String {
    let mut text = String::new();
    for cycle in lanes {
        for &b in cycle.iter().rev() {
            text.push(if b { '1' } else { '0' });
        }
        text.push('\n');
    }
    text
}

/// The same lanes as packed planes: feature = input index, batch = cycle.
fn stim_planes(lanes: &[Vec<bool>]) -> c2nn_core::BitTensor {
    let width = lanes.first().map_or(0, Vec::len);
    let mut bt = c2nn_core::BitTensor::zeros(width, lanes.len());
    for (c, cycle) in lanes.iter().enumerate() {
        for (f, &b) in cycle.iter().enumerate() {
            bt.set_bit(f, c, b);
        }
    }
    bt
}

#[test]
fn every_backend_and_circuit_is_bit_exact_over_both_wires() {
    let registry = BackendRegistry::global();
    for backend_name in registry.names() {
        let backend = registry.get(backend_name).unwrap();
        let server = spawn_server(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            registry: RegistryConfig {
                byte_budget: usize::MAX,
                batch: BatchConfig {
                    max_batch: 16,
                    max_wait: Duration::from_millis(1),
                    backend: Choice::Named(backend_name.to_string()),
                },
                ..RegistryConfig::default()
            },
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let mut json = Client::connect(&addr).unwrap();
        let mut binary = Client::connect_wire(&addr, WireFormat::Binary).unwrap();

        for (cname, nl) in suite_workloads() {
            let label = format!("{backend_name}/{cname}");
            let opts = backend.compile_options(CompileOptions::with_l(4));
            let nn = compile(&nl, opts).unwrap_or_else(|e| panic!("{label}: compile: {e}"));
            server
                .registry()
                .install(cname, nn)
                .unwrap_or_else(|e| panic!("{label}: install: {e}"));

            // gate-level ground truth
            let lanes = stimulus(nl.inputs.len(), 0xC0DEC ^ cname.len() as u64);
            let mut sim = CycleSim::new(&nl).unwrap();
            let expected_bits: Vec<Vec<bool>> = lanes.iter().map(|c| sim.step(c)).collect();
            let expected_text: Vec<String> = expected_bits
                .iter()
                .map(|out| {
                    out.iter()
                        .rev()
                        .map(|&b| if b { '1' } else { '0' })
                        .collect()
                })
                .collect();

            // text stimulus over both wires
            let text = stim_text(&lanes);
            let via_json = json
                .sim(cname, &text)
                .unwrap_or_else(|e| panic!("{label}: json sim: {e}"));
            assert_eq!(via_json, expected_text, "{label}: json text vs refsim");
            let via_binary = binary
                .sim(cname, &text)
                .unwrap_or_else(|e| panic!("{label}: binary sim: {e}"));
            assert_eq!(via_binary, expected_text, "{label}: binary text vs refsim");

            // packed stimulus over both wires: the zero-parse hot path
            let planes = stim_planes(&lanes);
            for (wire, client) in [("json", &mut json), ("binary", &mut binary)] {
                let out = client
                    .sim_packed(cname, &planes)
                    .unwrap_or_else(|e| panic!("{label}: {wire} packed sim: {e}"));
                assert_eq!(out.batch(), CYCLES, "{label}: {wire} packed cycles");
                assert_eq!(
                    out.features(),
                    nl.outputs.len(),
                    "{label}: {wire} packed output width"
                );
                for (c, bits) in expected_bits.iter().enumerate() {
                    for (o, &b) in bits.iter().enumerate() {
                        assert_eq!(
                            out.get_bit(o, c),
                            b,
                            "{label}: {wire} packed output {o} cycle {c}"
                        );
                    }
                }
            }
        }
        server.shutdown();
        server.join();
    }
}
