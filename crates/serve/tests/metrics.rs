//! Prometheus exposition, end-to-end: hostile label values survive a
//! render→parse round-trip, live-server histograms are cumulative, counters
//! never step backwards across scrapes, and the whole `/metrics` payload
//! validates under the same checker the CI smoke job runs.

use c2nn_circuits::generators::counter;
use c2nn_core::{compile, CompileOptions};
use c2nn_hal::Choice;
use c2nn_serve::client::fetch_metrics;
use c2nn_serve::metrics::{
    escape_label, parse_exposition, render, validate_exposition, Family, MetricKind, Sample,
};
use c2nn_serve::scheduler::BatchConfig;
use c2nn_serve::server::{spawn_server, ServerConfig, ServerHandle};
use c2nn_serve::{Client, RegistryConfig};
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

const WIDTH: usize = 4;

fn metrics_server() -> ServerHandle {
    let server = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        registry: RegistryConfig {
            byte_budget: usize::MAX,
            batch: BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
                backend: Choice::Named("scalar".to_string()),
            },
            ..RegistryConfig::default()
        },
        ..ServerConfig::default()
    })
    .unwrap();
    let nn = compile(&counter(WIDTH), CompileOptions::with_l(4)).unwrap();
    server.registry().install("ctr", nn).unwrap();
    server
}

/// Series key: sample name + sorted labels, the identity the "no duplicate
/// series" rule and the monotonicity check both hang off.
fn series_key(s: &Sample) -> String {
    let mut labels = s.labels.clone();
    labels.sort();
    format!("{}{:?}", s.name, labels)
}

#[test]
fn hostile_label_values_roundtrip() {
    let hostile = [
        "plain",
        "with \"quotes\"",
        "back\\slash",
        "new\nline",
        "all three: \\ \" \n done",
        "trailing backslash \\",
        "unicode é 💥",
        "",
    ];
    let mut fam = Family {
        name: "c2nn_test_total".to_string(),
        help: "hostile label\nround-trip \\ test".to_string(),
        kind: MetricKind::Counter,
        samples: Vec::new(),
    };
    for (i, v) in hostile.iter().enumerate() {
        fam.samples.push(Sample {
            name: "c2nn_test_total".to_string(),
            labels: vec![
                ("model".to_string(), v.to_string()),
                ("idx".to_string(), i.to_string()),
            ],
            value: i as f64 + 0.5,
        });
    }
    let text = render(&[fam]);
    validate_exposition(&text).expect("hostile labels still validate");
    let parsed = parse_exposition(&text).expect("render output parses");
    assert_eq!(parsed.samples.len(), hostile.len());
    for (i, v) in hostile.iter().enumerate() {
        let s = &parsed.samples[i];
        assert_eq!(
            s.labels[0],
            ("model".to_string(), v.to_string()),
            "label {i} survives"
        );
        assert_eq!(s.value, i as f64 + 0.5);
    }
}

#[test]
fn escaping_is_minimal_and_reversible() {
    assert_eq!(escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    assert_eq!(escape_label("untouched"), "untouched");
}

#[test]
fn live_histograms_are_cumulative_and_exposition_validates() {
    let server = metrics_server();
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    for i in 1..=5u32 {
        c.sim("ctr", &format!("1 x{}\n", i + 1)).unwrap();
    }
    let body = fetch_metrics(&addr).expect("scrape");
    validate_exposition(&body).expect("live exposition validates");
    let parsed = parse_exposition(&body).unwrap();

    // the latency histogram for "ctr" must be cumulative in `le` order,
    // with the +Inf bucket equal to _count and a consistent _sum
    let buckets: Vec<&Sample> = parsed
        .samples
        .iter()
        .filter(|s| {
            s.name == "c2nn_request_latency_seconds_bucket"
                && s.labels.iter().any(|(k, v)| k == "model" && v == "ctr")
        })
        .collect();
    assert!(!buckets.is_empty(), "ctr histogram is exported");
    let mut prev = 0.0;
    for b in &buckets {
        assert!(
            b.value >= prev,
            "bucket counts are cumulative: {} < {prev}",
            b.value
        );
        prev = b.value;
    }
    let le_inf = buckets
        .iter()
        .find(|b| b.labels.iter().any(|(k, v)| k == "le" && v == "+Inf"))
        .expect("+Inf bucket present");
    let count = parsed
        .samples
        .iter()
        .find(|s| {
            s.name == "c2nn_request_latency_seconds_count"
                && s.labels.iter().any(|(k, v)| k == "model" && v == "ctr")
        })
        .expect("_count present");
    assert_eq!(le_inf.value, count.value, "+Inf bucket equals _count");
    assert_eq!(count.value, 5.0, "five requests were observed");

    server.shutdown();
    server.join();
}

#[test]
fn counters_are_monotone_across_scrapes() {
    let server = metrics_server();
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    c.sim("ctr", "1 x3\n").unwrap();

    let first = parse_exposition(&fetch_metrics(&addr).unwrap()).unwrap();
    for _ in 0..4 {
        c.sim("ctr", "1 x2\n").unwrap();
    }
    let second = parse_exposition(&fetch_metrics(&addr).unwrap()).unwrap();

    let counter_names: HashMap<&str, ()> = first
        .types
        .iter()
        .filter(|(_, k)| k == "counter")
        .map(|(n, _)| (n.as_str(), ()))
        .collect();
    let later: HashMap<String, f64> = second
        .samples
        .iter()
        .map(|s| (series_key(s), s.value))
        .collect();
    let mut compared = 0;
    for s in &first.samples {
        let base = s
            .name
            .trim_end_matches("_bucket")
            .trim_end_matches("_sum")
            .trim_end_matches("_count");
        if !(counter_names.contains_key(s.name.as_str()) || counter_names.contains_key(base)) {
            continue;
        }
        if let Some(&v2) = later.get(&series_key(s)) {
            assert!(
                v2 >= s.value,
                "counter {} went backwards: {} -> {v2}",
                series_key(s),
                s.value
            );
            compared += 1;
        }
    }
    assert!(
        compared > 5,
        "monotonicity check covered {compared} counter series"
    );

    // and the request counter specifically advanced by the extra traffic
    let req = |e: &c2nn_serve::metrics::Exposition| {
        e.samples
            .iter()
            .find(|s| {
                s.name == "c2nn_requests_total"
                    && s.labels.iter().any(|(k, v)| k == "model" && v == "ctr")
            })
            .map(|s| s.value)
            .unwrap_or(0.0)
    };
    assert_eq!(req(&second) - req(&first), 4.0);

    server.shutdown();
    server.join();
}

#[test]
fn unknown_http_path_is_404_and_frames_still_work() {
    let server = metrics_server();
    let addr = server.local_addr().to_string();
    {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(&addr).unwrap();
        s.write_all(b"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 404"), "got: {raw}");
    }
    // HTTP handling must not poison the JSON path
    let mut c = Client::connect(&addr).unwrap();
    assert!(c.ping().is_ok());
    server.shutdown();
    server.join();
}

/// Vocabulary for metric-ish names (the exposition grammar wants
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`; name fuzzing belongs to the parser's
/// negative tests, value/label fuzzing lives here).
fn name_strategy() -> impl Strategy<Value = String> {
    (0usize..4).prop_map(|i| ["c2nn_a_total", "c2nn_b_seconds", "up", "x_y_z"][i].to_string())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, .. ProptestConfig::default() })]

    /// render → parse is lossless for arbitrary label soup and any finite
    /// value: same series identity, bit-identical value.
    #[test]
    fn render_parse_roundtrip(
        name in name_strategy(),
        label_soup in proptest::collection::vec(any::<u8>(), 0..40),
        bits in any::<u64>(),
    ) {
        // vendored proptest has no prop_assume; fold non-finite bit
        // patterns onto a finite value instead of discarding the case
        let raw = f64::from_bits(bits);
        let value = if raw.is_finite() { raw } else { (bits % 100_000) as f64 / 7.0 };
        let label_val = String::from_utf8_lossy(&label_soup).into_owned();
        let fam = Family {
            name: name.clone(),
            help: format!("prop family for {label_val:?}"),
            kind: MetricKind::Gauge,
            samples: vec![Sample {
                name: name.clone(),
                labels: vec![("soup".to_string(), label_val.clone())],
                value,
            }],
        };
        let text = render(&[fam]);
        let parsed = parse_exposition(&text).expect("rendered text parses");
        prop_assert_eq!(parsed.samples.len(), 1);
        let s = &parsed.samples[0];
        prop_assert_eq!(&s.name, &name);
        prop_assert_eq!(&s.labels[0].1, &label_val);
        prop_assert_eq!(s.value.to_bits(), value.to_bits(), "value {} round-trips", value);
        validate_exposition(&text).expect("rendered text validates");
    }
}
