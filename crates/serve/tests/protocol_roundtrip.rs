//! Wire-protocol totality: round-trips for every frame kind, plus
//! panic-freedom over hostile input (in the spirit of the BLIF reader
//! fuzz suite).
//!
//! The vendored proptest has no `String` strategy, so strings are built
//! from byte soup (lossy UTF-8) and from a protocol-flavoured vocabulary.

use c2nn_serve::protocol::{FrameReader, ModelStatsReport, Request, Response};
use proptest::prelude::*;

fn soup_string(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

/// Tokens steering random soup toward the frame grammar.
const VOCAB: &[&str] = &[
    "{",
    "}",
    "[",
    "]",
    ":",
    ",",
    "\"",
    "op",
    "ping",
    "load",
    "sim",
    "stats",
    "shutdown",
    "ok",
    "true",
    "false",
    "null",
    "name",
    "model",
    "stim",
    "model_json",
    "outputs",
    "cycles",
    "version",
    "error",
    "0",
    "1",
    "-1",
    "1e308",
    "\\n",
    "\\u0000",
    "é",
    " ",
    "\t",
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 300, .. ProptestConfig::default() })]

    /// Any pair of byte-soup strings survives a Sim round-trip.
    #[test]
    fn sim_request_roundtrips(
        model in proptest::collection::vec(any::<u8>(), 0..60),
        stim in proptest::collection::vec(any::<u8>(), 0..120),
    ) {
        let deadline_ms = if model.len() % 2 == 0 { None } else { Some(stim.len() as u64) };
        let req = Request::Sim { model: soup_string(&model), stim: soup_string(&stim), deadline_ms };
        let body = req.encode();
        prop_assert!(!body.contains('\n'), "frame must be one line: {body:?}");
        prop_assert_eq!(Request::decode(&body).unwrap(), req);
    }

    /// Load frames carry whole model documents — including newlines and
    /// quotes — and must round-trip exactly.
    #[test]
    fn load_request_roundtrips(
        name in proptest::collection::vec(any::<u8>(), 0..40),
        doc in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let req = Request::Load {
            name: soup_string(&name),
            model_json: soup_string(&doc),
            deadline_ms: if doc.len() % 2 == 0 { None } else { Some(name.len() as u64) },
        };
        let body = req.encode();
        prop_assert!(!body.contains('\n'));
        prop_assert_eq!(Request::decode(&body).unwrap(), req);
    }

    /// Responses round-trip, including the stats report with its float.
    #[test]
    fn responses_roundtrip(
        n in 0u64..1000,
        lanes in 1u64..100,
        batches in 1u64..100,
        msg in proptest::collection::vec(any::<u8>(), 0..80),
    ) {
        // occupancy chosen as an exact binary fraction so text formatting
        // round-trips bit-for-bit
        let report = ModelStatsReport {
            name: soup_string(&msg),
            backend: soup_string(&msg),
            auto_selected: n % 2 == 0,
            bytes: n * 13,
            requests: n,
            batches,
            lanes,
            mean_occupancy: (lanes / 4) as f64 + 0.25,
            queue_depth: n % 7,
            p50_us: 1 << (n % 40),
            p99_us: 1 << (n % 63),
            deadline_exceeded: n % 5,
        };
        let server = c2nn_serve::protocol::ServerStatsReport {
            inflight: n,
            max_inflight: n + lanes,
            pressure: "nominal".to_string(),
            draining: n % 2 == 0,
            rejected_sims: n * 3,
            rejected_loads: n % 11,
            rejected_draining: n % 13,
            pool_poisoned_epochs: n % 17,
            chaos_injected: n % 19,
            backends: vec![c2nn_serve::protocol::BackendSelectionReport {
                backend: soup_string(&msg),
                models: n % 3,
                auto_selected: n % 3,
                requests: n,
            }],
        };
        for resp in [
            Response::Pong { version: n as u32 },
            Response::Loaded { name: soup_string(&msg), bytes: n },
            Response::SimResult {
                outputs: vec![soup_string(&msg), "0101".to_string()],
                cycles: 2,
            },
            Response::Stats { models: vec![report], server },
            Response::ShuttingDown,
            Response::Overloaded { retry_after_ms: n },
            Response::DeadlineExceeded,
            Response::Error { message: soup_string(&msg) },
        ] {
            let body = resp.encode();
            prop_assert!(!body.contains('\n'));
            prop_assert_eq!(Response::decode(&body).unwrap(), resp);
        }
    }

    /// Raw byte soup never panics the decoders (errors are fine).
    #[test]
    fn byte_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let text = soup_string(&bytes);
        let _ = Request::decode(&text);
        let _ = Response::decode(&text);
    }

    /// Vocabulary soup reaches deeper decoder states (well-formed JSON
    /// with wrong shapes) and must also never panic.
    #[test]
    fn token_soup_never_panics(idx in proptest::collection::vec(0usize..VOCAB.len(), 0..120)) {
        let mut text = String::new();
        for i in idx {
            text.push_str(VOCAB[i]);
        }
        let _ = Request::decode(&text);
        let _ = Response::decode(&text);
    }

    /// The frame reader reassembles frames regardless of how the bytes are
    /// chunked by the transport.
    #[test]
    fn framing_is_chunking_invariant(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 1..6),
        chunk in 1usize..17,
    ) {
        // newlines inside a payload would split it — strip them, as the
        // encoder guarantees single-line bodies
        let frames: Vec<Vec<u8>> = payloads
            .iter()
            .map(|p| p.iter().copied().filter(|&b| b != b'\n').collect())
            .collect();
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(f);
            wire.push(b'\n');
        }
        let mut reader = FrameReader::new(Chunked { data: wire, pos: 0, chunk });
        for f in &frames {
            prop_assert_eq!(reader.read_frame().unwrap(), Some(f.clone()));
        }
        prop_assert_eq!(reader.read_frame().unwrap(), None);
    }
}

/// A reader that yields at most `chunk` bytes per call.
struct Chunked {
    data: Vec<u8>,
    pos: usize,
    chunk: usize,
}

impl std::io::Read for Chunked {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[test]
fn malformed_corpus_yields_typed_errors() {
    // each entry: (frame body, substring expected in the diagnostic)
    let corpus: &[(&str, &str)] = &[
        ("", ""),
        ("not json at all", ""),
        ("{}", "op"),
        ("{\"op\":42}", ""),
        ("{\"op\":\"warp\"}", "unknown op"),
        ("{\"op\":\"load\"}", "name"),
        ("{\"op\":\"load\",\"name\":\"m\"}", "model_json"),
        ("{\"op\":\"sim\",\"model\":\"m\"}", "stim"),
        ("{\"op\":\"sim\",\"model\":[],\"stim\":\"1\"}", ""),
        ("[1,2,3]", ""),
        ("{\"op\":\"ping\",", ""),
        ("\"ping\"", ""),
    ];
    for (body, needle) in corpus {
        match Request::decode(body) {
            Err(e) => assert!(
                e.message.contains(needle),
                "error {:?} for {body:?} does not mention {needle:?}",
                e.message
            ),
            Ok(r) => panic!("malformed frame accepted as {r:?}: {body:?}"),
        }
    }

    // response decoder: same discipline
    let resp_corpus: &[&str] = &[
        "{}",
        "{\"ok\":\"yes\"}",
        "{\"ok\":true}",
        "{\"ok\":true,\"op\":\"mystery\"}",
        "{\"ok\":false}",
        "{\"ok\":true,\"op\":\"sim\",\"outputs\":\"not a list\",\"cycles\":1}",
        "{\"ok\":true,\"op\":\"stats\",\"models\":[{\"name\":\"m\"}]}",
        "{\"ok\":false,\"kind\":\"overloaded\"}", // missing retry_after_ms
        "{\"ok\":false,\"kind\":\"meteor_strike\"}", // unknown kind is typed, not Error{}
        "{\"ok\":false,\"kind\":42}",
    ];
    for body in resp_corpus {
        assert!(
            Response::decode(body).is_err(),
            "malformed response accepted: {body:?}"
        );
    }
}

#[test]
fn oversized_frame_is_rejected_not_buffered_forever() {
    use c2nn_serve::protocol::MAX_FRAME;
    /// Infinite stream of 'a' with no newline in sight.
    struct Firehose;
    impl std::io::Read for Firehose {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            buf.fill(b'a');
            Ok(buf.len())
        }
    }
    let mut reader = FrameReader::new(Firehose);
    let err = reader.read_frame().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains(&MAX_FRAME.to_string()));
}
