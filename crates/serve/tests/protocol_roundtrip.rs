//! Wire-protocol totality: round-trips for every frame kind under **both**
//! codecs, plus panic-freedom over hostile input (in the spirit of the
//! BLIF reader fuzz suite) and a malformed-binary-frame corpus.
//!
//! The vendored proptest has no `String` strategy, so strings are built
//! from byte soup (lossy UTF-8) and from a protocol-flavoured vocabulary.

use c2nn_core::BitTensor;
use c2nn_serve::protocol::{
    BinaryCodec, Codec, FrameBuffer, FrameReader, JsonCodec, ModelStatsReport, Request, Response,
    SimOutputs, StimPayload, WireFormat,
};
use proptest::prelude::*;

fn soup_string(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

/// Both codec implementations, for "every variant × every codec" sweeps.
fn codecs() -> [&'static dyn Codec; 2] {
    [&JsonCodec, &BinaryCodec]
}

/// Round-trip one request through a codec *and* the shared framing layer:
/// encode → push into a [`FrameBuffer`] → pop → sniff → decode.
fn roundtrip_request(codec: &dyn Codec, req: &Request) -> Request {
    let encoded = codec.encode_request(req);
    let mut buf = FrameBuffer::new();
    buf.push(&encoded);
    let frame = buf
        .next_frame()
        .expect("framing accepts codec output")
        .expect("one complete frame");
    assert_eq!(frame.wire, codec.wire(), "sniff must agree with the codec");
    assert!(buf.is_empty(), "no residue after one frame");
    frame.decode_request().expect("decode what we encoded")
}

/// Same loop for responses.
fn roundtrip_response(codec: &dyn Codec, resp: &Response) -> Response {
    let encoded = codec.encode_response(resp);
    let mut buf = FrameBuffer::new();
    buf.push(&encoded);
    let frame = buf
        .next_frame()
        .expect("framing accepts codec output")
        .expect("one complete frame");
    assert_eq!(frame.wire, codec.wire(), "sniff must agree with the codec");
    frame.decode_response().expect("decode what we encoded")
}

/// A deterministic bit-plane tensor whose ragged tail is zero (the
/// canonical wire form both codecs enforce).
fn planes(features: usize, cycles: usize, seed: u64) -> BitTensor {
    let mut bt = BitTensor::zeros(features, cycles);
    let mut x = seed | 1;
    for f in 0..features {
        for c in 0..cycles {
            // splitmix-ish scramble; any deterministic bit pattern works
            x = x.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17) ^ (f as u64) << 32 ^ c as u64;
            bt.set_bit(f, c, x & 4 != 0);
        }
    }
    bt
}

/// Tokens steering random soup toward the frame grammar.
const VOCAB: &[&str] = &[
    "{",
    "}",
    "[",
    "]",
    ":",
    ",",
    "\"",
    "op",
    "ping",
    "load",
    "sim",
    "stats",
    "shutdown",
    "ok",
    "true",
    "false",
    "null",
    "name",
    "model",
    "stim",
    "stim_packed",
    "model_json",
    "outputs",
    "outputs_packed",
    "features",
    "cycles",
    "words",
    "version",
    "error",
    "0",
    "1",
    "-1",
    "1e308",
    "\\n",
    "\\u0000",
    "é",
    " ",
    "\t",
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 300, .. ProptestConfig::default() })]

    /// Any pair of byte-soup strings survives a text Sim round-trip under
    /// both codecs.
    #[test]
    fn sim_request_roundtrips(
        model in proptest::collection::vec(any::<u8>(), 0..60),
        stim in proptest::collection::vec(any::<u8>(), 0..120),
    ) {
        let deadline_ms = if model.len() % 2 == 0 { None } else { Some(stim.len() as u64) };
        let req = Request::Sim {
            model: soup_string(&model),
            stim: StimPayload::Text(soup_string(&stim)),
            deadline_ms,
        };
        for codec in codecs() {
            prop_assert_eq!(roundtrip_request(codec, &req), req.clone());
        }
    }

    /// Packed Sim requests — the binary hot path — round-trip bit-for-bit
    /// under both codecs.
    #[test]
    fn packed_sim_roundtrips(
        features in 1usize..9,
        cycles in 1usize..130,
        seed in any::<u64>(),
    ) {
        let req = Request::Sim {
            model: "m".to_string(),
            stim: StimPayload::Packed(planes(features, cycles, seed)),
            deadline_ms: Some(seed % 1000),
        };
        for codec in codecs() {
            prop_assert_eq!(roundtrip_request(codec, &req), req.clone());
        }
        let resp = Response::SimResult {
            outputs: SimOutputs::Packed(planes(features, cycles, seed ^ 0xABCD)),
            cycles: cycles as u64,
        };
        for codec in codecs() {
            prop_assert_eq!(roundtrip_response(codec, &resp), resp.clone());
        }
    }

    /// Load frames carry whole model documents — including newlines and
    /// quotes — and must round-trip exactly. (Valid UTF-8 under JSON,
    /// which escapes the document as a string; arbitrary bytes under the
    /// binary codec, which ships them raw.)
    #[test]
    fn load_request_roundtrips(
        name in proptest::collection::vec(any::<u8>(), 0..40),
        doc in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let deadline_ms = if doc.len() % 2 == 0 { None } else { Some(name.len() as u64) };
        let text_req = Request::Load {
            name: soup_string(&name),
            model: soup_string(&doc).into_bytes(),
            deadline_ms,
        };
        for codec in codecs() {
            prop_assert_eq!(roundtrip_request(codec, &text_req), text_req.clone());
        }
        let raw_req = Request::Load {
            name: soup_string(&name),
            model: doc.clone(),
            deadline_ms,
        };
        prop_assert_eq!(roundtrip_request(&BinaryCodec, &raw_req), raw_req.clone());
    }

    /// A canonical single-line JSON model document is embedded in the
    /// `load` frame as a raw subtree (framed once, not double-escaped) and
    /// still round-trips byte-for-byte.
    #[test]
    fn canonical_model_is_framed_once(n in 0u64..100000) {
        let doc = format!("{{\"layers\":[{n}],\"l\":{}}}", n % 7);
        let req = Request::Load {
            name: "m".to_string(),
            model: doc.clone().into_bytes(),
            deadline_ms: None,
        };
        let body = req.encode();
        // the document must appear verbatim — not escaped inside a string
        prop_assert!(body.contains(&doc), "not framed once: {body}");
        prop_assert!(!body.contains("model_json"), "fell back to escaping: {body}");
        prop_assert_eq!(Request::decode(&body).unwrap(), req);
    }

    /// Remaining request variants and every response variant round-trip
    /// under both codecs, including the stats report with its float.
    #[test]
    fn responses_roundtrip(
        n in 0u64..1000,
        lanes in 1u64..100,
        batches in 1u64..100,
        msg in proptest::collection::vec(any::<u8>(), 0..80),
    ) {
        for req in [Request::Ping, Request::Stats, Request::Shutdown] {
            for codec in codecs() {
                prop_assert_eq!(roundtrip_request(codec, &req), req.clone());
            }
        }
        // occupancy chosen as an exact binary fraction so text formatting
        // round-trips bit-for-bit
        let report = ModelStatsReport {
            name: soup_string(&msg),
            backend: soup_string(&msg),
            auto_selected: n % 2 == 0,
            bytes: n * 13,
            requests: n,
            batches,
            lanes,
            mean_occupancy: (lanes / 4) as f64 + 0.25,
            queue_depth: n % 7,
            p50_us: 1 << (n % 40),
            p99_us: 1 << (n % 63),
            deadline_exceeded: n % 5,
        };
        let server = c2nn_serve::protocol::ServerStatsReport {
            inflight: n,
            max_inflight: n + lanes,
            pressure: "nominal".to_string(),
            draining: n % 2 == 0,
            rejected_sims: n * 3,
            rejected_loads: n % 11,
            rejected_draining: n % 13,
            pool_poisoned_epochs: n % 17,
            chaos_injected: n % 19,
            wire_json_frames: n * 7,
            wire_binary_frames: n * 5,
            backends: vec![c2nn_serve::protocol::BackendSelectionReport {
                backend: soup_string(&msg),
                models: n % 3,
                auto_selected: n % 3,
                requests: n,
            }],
        };
        for resp in [
            Response::Pong { version: n as u32 },
            Response::Loaded { name: soup_string(&msg), bytes: n },
            Response::SimResult {
                outputs: SimOutputs::Text(vec![soup_string(&msg), "0101".to_string()]),
                cycles: 2,
            },
            Response::Stats { models: vec![report], server },
            Response::ShuttingDown,
            Response::Overloaded { retry_after_ms: n },
            Response::DeadlineExceeded,
            Response::Error { message: soup_string(&msg) },
        ] {
            for codec in codecs() {
                prop_assert_eq!(roundtrip_response(codec, &resp), resp.clone());
            }
        }
    }

    /// Raw byte soup never panics the decoders (errors are fine) — JSON
    /// text decoders and both codecs' frame decoders.
    #[test]
    fn byte_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let text = soup_string(&bytes);
        let _ = Request::decode(&text);
        let _ = Response::decode(&text);
        for codec in codecs() {
            let _ = codec.decode_request(&bytes);
            let _ = codec.decode_response(&bytes);
        }
    }

    /// Byte soup *behind a valid binary header* reaches the payload
    /// decoders (bounds-checked cursor) and must never panic either.
    #[test]
    fn framed_soup_never_panics(
        kind in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let mut frame = vec![0xC2, 1, kind, 0];
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        let _ = BinaryCodec.decode_request(&frame);
        let _ = BinaryCodec.decode_response(&frame);
    }

    /// Vocabulary soup reaches deeper decoder states (well-formed JSON
    /// with wrong shapes) and must also never panic.
    #[test]
    fn token_soup_never_panics(idx in proptest::collection::vec(0usize..VOCAB.len(), 0..120)) {
        let mut text = String::new();
        for i in idx {
            text.push_str(VOCAB[i]);
        }
        let _ = Request::decode(&text);
        let _ = Response::decode(&text);
    }

    /// The frame reader reassembles frames regardless of how the bytes are
    /// chunked by the transport — for interleaved JSON *and* binary frames
    /// on the same connection.
    #[test]
    fn framing_is_chunking_invariant(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 1..6),
        chunk in 1usize..17,
    ) {
        // every odd payload ships as a binary ping-with-garbage-free
        // payload... no: framing doesn't care about content, so odd
        // payloads go out as binary frames (arbitrary kind/payload) and
        // even ones as JSON lines (newline-free, non-magic first byte)
        let mut wire = Vec::new();
        let mut expect: Vec<(WireFormat, Vec<u8>)> = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            if i % 2 == 0 {
                // JSON line: strip newlines (the encoder guarantees
                // single-line bodies) and a leading binary magic byte
                // (which would be sniffed as a binary header)
                let body: Vec<u8> = p
                    .iter()
                    .copied()
                    .filter(|&b| b != b'\n')
                    .skip_while(|&b| b == 0xC2)
                    .collect();
                wire.extend_from_slice(&body);
                wire.push(b'\n');
                expect.push((WireFormat::Json, body));
            } else {
                let mut frame = vec![0xC2u8, 1, (i % 256) as u8, 0];
                frame.extend_from_slice(&(p.len() as u32).to_le_bytes());
                frame.extend_from_slice(p);
                wire.extend_from_slice(&frame);
                expect.push((WireFormat::Binary, frame));
            }
        }
        let mut reader = FrameReader::new(Chunked { data: wire, pos: 0, chunk });
        for (wire_fmt, bytes) in &expect {
            let frame = reader.read_frame().unwrap().expect("frame present");
            prop_assert_eq!(frame.wire, *wire_fmt);
            prop_assert_eq!(&frame.bytes, bytes);
        }
        prop_assert_eq!(reader.read_frame().unwrap(), None);
    }
}

/// A reader that yields at most `chunk` bytes per call.
struct Chunked {
    data: Vec<u8>,
    pos: usize,
    chunk: usize,
}

impl std::io::Read for Chunked {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[test]
fn malformed_corpus_yields_typed_errors() {
    // each entry: (frame body, substring expected in the diagnostic)
    let corpus: &[(&str, &str)] = &[
        ("", ""),
        ("not json at all", ""),
        ("{}", "op"),
        ("{\"op\":42}", ""),
        ("{\"op\":\"warp\"}", "unknown op"),
        ("{\"op\":\"load\"}", "model_json"),
        ("{\"op\":\"load\",\"model\":{},\"name\":42}", "name"),
        ("{\"op\":\"sim\",\"model\":\"m\"}", "stim"),
        ("{\"op\":\"sim\",\"model\":[],\"stim\":\"1\"}", ""),
        ("[1,2,3]", ""),
        ("{\"op\":\"ping\",", ""),
        ("\"ping\"", ""),
        // packed stimulus with defects: bad shape, bad hex, wrong type
        (
            "{\"op\":\"sim\",\"model\":\"m\",\"stim_packed\":{\"features\":1}}",
            "",
        ),
        (
            "{\"op\":\"sim\",\"model\":\"m\",\"stim_packed\":{\"features\":1,\"cycles\":1,\"words\":[\"zz\"]}}",
            "bit-plane",
        ),
        (
            "{\"op\":\"sim\",\"model\":\"m\",\"stim_packed\":{\"features\":2,\"cycles\":1,\"words\":[\"1\"]}}",
            "",
        ),
        ("{\"op\":\"sim\",\"model\":\"m\",\"stim_packed\":7}", ""),
    ];
    for (body, needle) in corpus {
        match Request::decode(body) {
            Err(e) => assert!(
                e.message.contains(needle),
                "error {:?} for {body:?} does not mention {needle:?}",
                e.message
            ),
            Ok(r) => panic!("malformed frame accepted as {r:?}: {body:?}"),
        }
    }

    // response decoder: same discipline
    let resp_corpus: &[&str] = &[
        "{}",
        "{\"ok\":\"yes\"}",
        "{\"ok\":true}",
        "{\"ok\":true,\"op\":\"mystery\"}",
        "{\"ok\":false}",
        "{\"ok\":true,\"op\":\"sim\",\"outputs\":\"not a list\",\"cycles\":1}",
        "{\"ok\":true,\"op\":\"stats\",\"models\":[{\"name\":\"m\"}]}",
        "{\"ok\":false,\"kind\":\"overloaded\"}", // missing retry_after_ms
        "{\"ok\":false,\"kind\":\"meteor_strike\"}", // unknown kind is typed, not Error{}
        "{\"ok\":false,\"kind\":42}",
    ];
    for body in resp_corpus {
        assert!(
            Response::decode(body).is_err(),
            "malformed response accepted: {body:?}"
        );
    }
}

/// Build a binary frame with explicit header fields — the corpus generator
/// for hostile frames.
fn raw_frame(magic: u8, version: u8, kind: u8, flags: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = vec![magic, version, kind, flags];
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

#[test]
fn malformed_binary_content_yields_typed_errors() {
    // complete frames whose *payload* is defective: the connection stays
    // usable, so these must come back as ProtocolError, never a panic and
    // never an Ok
    let cases: &[(Vec<u8>, &str)] = &[
        // unknown request kind (a response kind sent client→server)
        (
            raw_frame(0xC2, 1, 0x81, 0, &[]),
            "unknown binary request kind",
        ),
        (
            raw_frame(0xC2, 1, 0x7F, 0, &[]),
            "unknown binary request kind",
        ),
        // nonzero reserved flags
        (raw_frame(0xC2, 1, 0x01, 3, &[]), "flags"),
        // ping with trailing garbage
        (raw_frame(0xC2, 1, 0x01, 0, b"xx"), "trailing garbage"),
        // load whose name length field runs past the payload
        (
            raw_frame(0xC2, 1, 0x02, 0, &[255, 255, 255, 255, b'm']),
            "truncated",
        ),
        // sim with an unknown stimulus form
        (
            raw_frame(0xC2, 1, 0x03, 0, &{
                let mut p = vec![1, 0, 0, 0, b'm']; // model "m"
                p.extend_from_slice(&[0; 9]); // no deadline
                p.push(9); // bogus form tag
                p
            }),
            "unknown stimulus form",
        ),
        // sim with a bad deadline presence flag
        (
            raw_frame(0xC2, 1, 0x03, 0, &{
                let mut p = vec![1, 0, 0, 0, b'm'];
                p.push(7); // presence must be 0 or 1
                p.extend_from_slice(&[0; 8]);
                p.push(0);
                p
            }),
            "deadline",
        ),
        // packed sim whose plane bytes don't match the declared shape
        (
            raw_frame(0xC2, 1, 0x03, 0, &{
                let mut p = vec![1, 0, 0, 0, b'm'];
                p.extend_from_slice(&[0; 9]);
                p.push(1); // FORM_PACKED
                p.extend_from_slice(&2u32.to_le_bytes()); // features
                p.extend_from_slice(&1u32.to_le_bytes()); // cycles
                p.extend_from_slice(&0u64.to_le_bytes()); // 1 word, need 2
                p
            }),
            "does not match",
        ),
        // packed sim whose ragged tail has nonzero bits (non-canonical)
        (
            raw_frame(0xC2, 1, 0x03, 0, &{
                let mut p = vec![1, 0, 0, 0, b'm'];
                p.extend_from_slice(&[0; 9]);
                p.push(1);
                p.extend_from_slice(&1u32.to_le_bytes()); // 1 feature
                p.extend_from_slice(&1u32.to_le_bytes()); // 1 cycle
                p.extend_from_slice(&u64::MAX.to_le_bytes()); // 63 tail bits set
                p
            }),
            "",
        ),
        // shape product that overflows usize
        (
            raw_frame(0xC2, 1, 0x03, 0, &{
                let mut p = vec![1, 0, 0, 0, b'm'];
                p.extend_from_slice(&[0; 9]);
                p.push(1);
                p.extend_from_slice(&u32::MAX.to_le_bytes());
                p.extend_from_slice(&u32::MAX.to_le_bytes());
                p
            }),
            "",
        ),
        // load whose name is invalid UTF-8
        (
            raw_frame(0xC2, 1, 0x02, 0, &[2, 0, 0, 0, 0xFF, 0xFE]),
            "UTF-8",
        ),
    ];
    for (frame, needle) in cases {
        match BinaryCodec.decode_request(frame) {
            Err(e) => assert!(
                e.message.contains(needle),
                "error {:?} for {frame:?} does not mention {needle:?}",
                e.message
            ),
            Ok(r) => panic!("malformed binary frame accepted as {r:?}: {frame:?}"),
        }
    }

    // response-side: unknown kind, truncated fixed fields, garbage tails
    let resp_cases: &[Vec<u8>] = &[
        raw_frame(0xC2, 1, 0x01, 0, &[]),         // request kind as response
        raw_frame(0xC2, 1, 0xFF, 0, &[]),         // unknown kind
        raw_frame(0xC2, 1, 0x81, 0, &[1, 2]),     // pong with short version
        raw_frame(0xC2, 1, 0x81, 0, &[0; 8]),     // pong with a trailing word
        raw_frame(0xC2, 1, 0x84, 0, b"not json"), // stats reply, garbage payload
        raw_frame(0xC2, 1, 0x86, 0, &[]),         // overloaded missing retry hint
    ];
    for frame in resp_cases {
        assert!(
            BinaryCodec.decode_response(frame).is_err(),
            "malformed binary response accepted: {frame:?}"
        );
    }

    // header defects are rejected even when handed straight to the codec
    // (the framing layer normally catches these first)
    assert!(
        BinaryCodec.decode_request(&[0xC2, 1, 1]).is_err(),
        "short header"
    );
    assert!(
        BinaryCodec
            .decode_request(&raw_frame(0x7B, 1, 1, 0, &[]))
            .is_err(),
        "wrong magic"
    );
    assert!(
        BinaryCodec
            .decode_request(&raw_frame(0xC2, 9, 1, 0, &[]))
            .is_err(),
        "future wire version"
    );
    // declared length disagrees with actual frame length
    let mut lying = raw_frame(0xC2, 1, 1, 0, &[]);
    lying[4] = 5;
    assert!(BinaryCodec.decode_request(&lying).is_err(), "lying length");
}

#[test]
fn binary_framing_defects_poison_the_buffer() {
    // framing-layer corruption (as opposed to payload defects): the buffer
    // can no longer find frame boundaries, so next_frame errors with
    // InvalidData and clears itself
    use c2nn_serve::protocol::FrameLimits;
    use std::time::Duration;

    // unsupported wire version
    let mut buf = FrameBuffer::new();
    buf.push(&raw_frame(0xC2, 2, 0x01, 0, &[]));
    let err = buf.next_frame().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("version"), "{err}");
    assert!(buf.is_empty(), "poisoned buffer must be cleared");

    // header declares a length beyond the configured limit
    let limits = FrameLimits {
        max_frame: 1024,
        drain_window: Duration::from_millis(250),
    };
    let mut buf = FrameBuffer::with_limits(limits);
    let mut frame = vec![0xC2, 1, 0x01, 0];
    frame.extend_from_slice(&(10_000u32).to_le_bytes());
    buf.push(&frame);
    let err = buf.next_frame().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("1024"), "{err}");

    // a truncated header is not an error — just an incomplete frame
    let mut buf = FrameBuffer::new();
    buf.push(&[0xC2, 1, 0x01]);
    assert!(matches!(buf.next_frame(), Ok(None)));
    assert!(!buf.has_complete_frame());
    // completing the header + empty payload yields the frame
    buf.push(&[0, 0, 0, 0, 0]);
    assert!(buf.has_complete_frame());
    let frame = buf.next_frame().unwrap().unwrap();
    assert_eq!(frame.wire, WireFormat::Binary);
    assert_eq!(frame.decode_request().unwrap(), Request::Ping);
}

#[test]
fn oversized_frame_is_rejected_not_buffered_forever() {
    use c2nn_serve::protocol::MAX_FRAME;
    /// Infinite stream of 'a' with no newline in sight.
    struct Firehose;
    impl std::io::Read for Firehose {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            buf.fill(b'a');
            Ok(buf.len())
        }
    }
    let mut reader = FrameReader::new(Firehose);
    let err = reader.read_frame().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains(&MAX_FRAME.to_string()));
}
