//! Chaos scenarios against a live server: injected worker panics, scheduler
//! stalls, and hostile clients (slow-loris, corrupt frames, truncated
//! frames). The contract under every scenario is the same — typed replies
//! only, no wedged threads, and bit-exact results once the fault passes.
//!
//! All schedules are seeded, so a failure here reproduces byte-for-byte
//! with the same seed.

use c2nn_circuits::generators::counter;
use c2nn_core::{compile, parse_stim, CompileOptions};
use c2nn_refsim::CycleSim;
use c2nn_serve::chaos::{
    send_corrupt_frame, send_truncated_frame, slow_loris_request, Chaos, ChaosConfig, Rng,
};
use c2nn_serve::protocol::{Request, Response};
use c2nn_serve::scheduler::BatchConfig;
use c2nn_serve::server::{spawn_server, ServerConfig, ServerHandle};
use c2nn_serve::{Client, ClientError, RegistryConfig};
use std::sync::Arc;
use std::time::Duration;

const WIDTH: usize = 4;

fn refsim_outputs(stim_text: &str) -> Vec<String> {
    let nl = counter(WIDTH);
    let mut sim = CycleSim::new(&nl).unwrap();
    let stim = parse_stim(stim_text, 1).unwrap();
    stim.cycles
        .iter()
        .map(|cycle| {
            let out = sim.step(cycle);
            out.iter()
                .rev()
                .map(|&b| if b { '1' } else { '0' })
                .collect()
        })
        .collect()
}

fn chaos_server(spec: &str, backend: &str) -> (ServerHandle, Arc<Chaos>) {
    let chaos = Chaos::new(ChaosConfig::parse(spec).unwrap());
    let server = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        registry: RegistryConfig {
            byte_budget: usize::MAX,
            batch: BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
                backend: c2nn_hal::Choice::Named(backend.to_string()),
            },
            chaos: Some(Arc::clone(&chaos)),
            ..RegistryConfig::default()
        },
        ..ServerConfig::default()
    })
    .unwrap();
    let nn = compile(&counter(WIDTH), CompileOptions::with_l(4)).unwrap();
    server.registry().install("ctr", nn).unwrap();
    (server, chaos)
}

/// Satellite: inject a worker panic mid-batch through the chaos layer;
/// assert the affected request fails *typed*, the pool respawns the worker,
/// and the next batch is bit-exact.
#[test]
fn injected_worker_panic_fails_typed_then_heals_bit_exact() {
    // exactly one injected panic, then clean — pooled-csr so the batch
    // actually runs on the pool being wounded
    let (server, chaos) = chaos_server("seed=7,worker_panic=1,worker_panic_budget=1", "pooled-csr");
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    let stim = "1 x6\n0 x2\n";
    let expected = refsim_outputs(stim);

    // first sim rides the poisoned batch
    match c.sim("ctr", stim) {
        Err(ClientError::Server(msg)) => {
            assert!(
                msg.contains("panicked"),
                "failure must say what happened: {msg}"
            );
        }
        Ok(_) => panic!("first batch must fail: the chaos schedule injects a panic into it"),
        Err(e) => panic!("expected a typed server error, got {e}"),
    }
    assert_eq!(chaos.injected_panics(), 1, "schedule fired exactly once");

    // the pool healed and the batcher survived: same connection, bit-exact
    for _ in 0..3 {
        assert_eq!(
            c.sim("ctr", stim).unwrap(),
            expected,
            "post-heal batch must be bit-exact"
        );
    }

    let stats = c.stats().unwrap();
    assert!(stats.server.pool_poisoned_epochs >= 1, "{:?}", stats.server);
    assert_eq!(stats.server.chaos_injected, 1);

    server.shutdown();
    server.join();
}

/// Injected scheduler stalls delay batches but never corrupt them, and the
/// budget caps how many fire.
#[test]
fn injected_stalls_delay_but_never_corrupt() {
    let (server, chaos) = chaos_server("seed=3,stall=1,stall_ms=40,stall_budget=2", "scalar");
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    let stim = "1 x5\n";
    let expected = refsim_outputs(stim);
    for _ in 0..4 {
        assert_eq!(c.sim("ctr", stim).unwrap(), expected);
    }
    assert_eq!(chaos.injected_stalls(), 2, "stall budget caps injections");
    server.shutdown();
    server.join();
}

/// A slow-loris client (one byte at a time) is served correctly and does
/// not starve a concurrent well-behaved client.
#[test]
fn slow_loris_is_served_without_starving_others() {
    let (server, _chaos) = chaos_server("seed=1", "scalar");
    let addr = server.local_addr().to_string();
    let stim = "1 x4\n";
    let expected = refsim_outputs(stim);

    let loris = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            slow_loris_request(
                &addr,
                &Request::Ping,
                Duration::from_millis(5),
                Duration::from_secs(5),
            )
        })
    };
    // the fast client gets answers while the loris dribbles bytes
    let mut c = Client::connect(&addr).unwrap();
    for _ in 0..3 {
        assert_eq!(c.sim("ctr", stim).unwrap(), expected);
    }
    match loris.join().unwrap() {
        Ok(Response::Pong { .. }) => {}
        other => panic!("slow-loris ping must still be answered, got {other:?}"),
    }
    server.shutdown();
    server.join();
}

/// Corrupt frames get a typed `Error` reply; the server neither crashes
/// nor poisons other connections.
#[test]
fn corrupt_frames_get_typed_errors_and_server_survives() {
    let (server, _chaos) = chaos_server("seed=11", "scalar");
    let addr = server.local_addr().to_string();
    let mut rng = Rng::new(11);
    for len in [1usize, 16, 200] {
        match send_corrupt_frame(&addr, &mut rng, len, Duration::from_secs(5)) {
            Ok(Response::Error { .. }) => {}
            Ok(other) => panic!("garbage frame must be answered Error, got {other:?}"),
            // a reply is not guaranteed if the garbage tripped the
            // framing-integrity disconnect, but the error must be typed
            // at the transport level (EOF), not a hang
            Err(e) => assert!(
                e.contains("closed") || e.contains("reading response"),
                "unexpected transport failure: {e}"
            ),
        }
    }
    // the server is still healthy
    let mut c = Client::connect(&addr).unwrap();
    assert_eq!(c.sim("ctr", "1 x3\n").unwrap(), refsim_outputs("1 x3\n"));
    server.shutdown();
    server.join();
}

/// Truncated frames (client dies mid-send) are that connection's problem
/// only.
#[test]
fn truncated_frames_only_hurt_their_own_connection() {
    let (server, _chaos) = chaos_server("seed=13", "scalar");
    let addr = server.local_addr().to_string();
    let req = Request::Sim {
        model: "ctr".into(),
        stim: "1 x4\n".into(),
        deadline_ms: None,
    };
    for keep in [1usize, 10, 30] {
        send_truncated_frame(&addr, &req, keep).unwrap();
    }
    let mut c = Client::connect(&addr).unwrap();
    assert_eq!(c.sim("ctr", "1 x4\n").unwrap(), refsim_outputs("1 x4\n"));
    server.shutdown();
    server.join();
}

/// The same seed produces the same injection schedule — the determinism
/// that makes a failing chaos run reproducible.
#[test]
fn chaos_schedule_is_deterministic_per_seed() {
    let spec = "seed=42,worker_panic=0.5,worker_panic_budget=1000,stall=0.25,stall_budget=1000";
    let a = Chaos::new(ChaosConfig::parse(spec).unwrap());
    let b = Chaos::new(ChaosConfig::parse(spec).unwrap());
    let schedule = |c: &Chaos| -> Vec<(bool, bool)> {
        (0..200)
            .map(|_| (c.take_worker_panic(), c.take_stall().is_some()))
            .collect()
    };
    assert_eq!(schedule(&a), schedule(&b));
    assert_eq!(a.injected(), b.injected());
}
