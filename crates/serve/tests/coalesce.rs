//! Coalescing correctness end-to-end: N concurrent clients with distinct
//! stimuli must each receive exactly the outputs the scalar reference
//! simulator produces for *their* testbench — coalescing must be
//! invisible except in the stats.

use c2nn_circuits::generators::counter;
use c2nn_core::{compile, parse_stim, CompileOptions};
use c2nn_hal::Choice;
use c2nn_refsim::CycleSim;
use c2nn_serve::scheduler::BatchConfig;
use c2nn_serve::server::{spawn_server, ServerConfig, ServerHandle};
use c2nn_serve::{Client, RegistryConfig};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const WIDTH: usize = 4;

/// Expected MSB-first output strings for one `.stim` testbench, from the
/// scalar gate-level reference simulator.
fn refsim_outputs(stim_text: &str) -> Vec<String> {
    let nl = counter(WIDTH);
    let mut sim = CycleSim::new(&nl).unwrap();
    let stim = parse_stim(stim_text, 1).unwrap();
    stim.cycles
        .iter()
        .map(|cycle| {
            let out = sim.step(cycle);
            out.iter()
                .rev()
                .map(|&b| if b { '1' } else { '0' })
                .collect()
        })
        .collect()
}

fn coalescing_server(max_batch: usize, max_wait: Duration) -> ServerHandle {
    let server = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        registry: RegistryConfig {
            byte_budget: usize::MAX,
            batch: BatchConfig {
                max_batch,
                max_wait,
                backend: Choice::Named("scalar".to_string()),
            },
            ..RegistryConfig::default()
        },
        ..ServerConfig::default()
    })
    .unwrap();
    let nn = compile(&counter(WIDTH), CompileOptions::with_l(4)).unwrap();
    server.registry().install("ctr", nn).unwrap();
    server
}

#[test]
fn concurrent_clients_get_exactly_their_lane() {
    // 8 distinct stimuli: different enable patterns and lengths, so any
    // lane cross-talk or off-by-one scatter produces a mismatch
    let stims: Vec<String> = (0..8)
        .map(|i| {
            let run = i + 2;
            format!("1 x{run}\n0 x2\n1 x{}\n", 1 + (i % 3))
        })
        .collect();
    let expected: Vec<Vec<String>> = stims.iter().map(|s| refsim_outputs(s)).collect();

    // generous max_wait so all 8 clients land in few batches even on a
    // slow machine; max_batch 8 releases the batch as soon as all arrive
    let server = coalescing_server(8, Duration::from_millis(400));
    let addr = server.local_addr().to_string();

    let barrier = Arc::new(Barrier::new(stims.len()));
    let handles: Vec<_> = stims
        .iter()
        .cloned()
        .map(|stim| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                barrier.wait(); // all clients fire together
                c.sim("ctr", &stim).unwrap()
            })
        })
        .collect();
    let got: Vec<Vec<String>> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    for (i, (g, e)) in got.iter().zip(expected.iter()).enumerate() {
        assert_eq!(g, e, "client {i} outputs diverge from scalar refsim");
    }

    // the batcher must actually have coalesced: more lanes than batches
    let mut c = Client::connect(&addr).unwrap();
    let stats = c.stats().unwrap();
    let ctr = stats.models.iter().find(|m| m.name == "ctr").unwrap();
    assert_eq!(ctr.requests, 8);
    assert_eq!(ctr.lanes, 8);
    assert!(
        ctr.mean_occupancy > 1.0,
        "expected coalescing with 8 simultaneous clients, got {ctr:?}"
    );
    assert_eq!(ctr.queue_depth, 0, "all requests drained");

    c.shutdown().unwrap();
    server.join();
}

#[test]
fn disconnect_mid_batch_leaves_other_lanes_intact() {
    let server = coalescing_server(4, Duration::from_millis(300));
    let addr = server.local_addr().to_string();

    // the victim sends a sim request and immediately drops the connection;
    // the survivor's result must still bit-match the refsim
    let victim_stim = "1 x6\n";
    let survivor_stim = "1 x3\n0 x2\n";
    let expected = refsim_outputs(survivor_stim);

    let survivor = {
        let addr = addr.clone();
        let stim = survivor_stim.to_string();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.sim("ctr", &stim).unwrap()
        })
    };
    {
        use c2nn_serve::protocol::{write_frame, Request, StimPayload};
        use std::net::TcpStream;
        let mut s = TcpStream::connect(&addr).unwrap();
        let req = Request::Sim {
            model: "ctr".into(),
            stim: StimPayload::Text(victim_stim.into()),
            deadline_ms: None,
        };
        write_frame(&mut s, &req.encode()).unwrap();
        // dropped here without reading the reply: client vanished mid-batch
    }
    assert_eq!(survivor.join().unwrap(), expected);

    server.shutdown();
    server.join();
}

#[test]
fn sequential_requests_still_work_with_tiny_deadline() {
    // no coalescing opportunity: one client, near-zero deadline — results
    // must still be exact and occupancy reports 1.0
    let server = coalescing_server(16, Duration::from_millis(1));
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    for stim in ["1 x5\n", "0 x3\n1 x2\n", "1 x15\n"] {
        assert_eq!(c.sim("ctr", stim).unwrap(), refsim_outputs(stim));
    }
    let stats = c.stats().unwrap();
    let ctr = stats.models.iter().find(|m| m.name == "ctr").unwrap();
    assert_eq!(ctr.requests, 3);
    assert!((ctr.mean_occupancy - 1.0).abs() < 1e-9, "{ctr:?}");
    server.shutdown();
    server.join();
}
