//! The epoll event loop, end-to-end over real sockets: every protocol op,
//! bit-exact differential agreement with the threaded I/O model, pipelined
//! non-reading clients (write backpressure), hostile input, half-close
//! semantics, and drain behavior. Linux-only, like the event loop itself.
#![cfg(target_os = "linux")]

use c2nn_circuits::generators::counter;
use c2nn_core::{compile, parse_stim, CompileOptions};
use c2nn_hal::Choice;
use c2nn_refsim::CycleSim;
use c2nn_serve::client::fetch_metrics;
use c2nn_serve::metrics::parse_exposition;
use c2nn_serve::protocol::{Request, Response, SimOutputs, StimPayload};
use c2nn_serve::scheduler::BatchConfig;
use c2nn_serve::server::{spawn_server, IoModel, ServerConfig, ServerHandle};
use c2nn_serve::{Client, ClientError, RegistryConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const WIDTH: usize = 4;

fn server_with(io: IoModel, max_inflight: usize) -> ServerHandle {
    let server = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        io,
        registry: RegistryConfig {
            byte_budget: usize::MAX,
            batch: BatchConfig {
                max_batch: 16,
                max_wait: Duration::from_millis(1),
                backend: Choice::Named("scalar".to_string()),
            },
            max_inflight,
            ..RegistryConfig::default()
        },
        ..ServerConfig::default()
    })
    .unwrap();
    let nn = compile(&counter(WIDTH), CompileOptions::with_l(4)).unwrap();
    server.registry().install("ctr", nn).unwrap();
    server
}

fn epoll_server() -> ServerHandle {
    server_with(IoModel::EventLoop, 1024)
}

fn refsim_outputs(stim_text: &str) -> Vec<String> {
    let nl = counter(WIDTH);
    let mut sim = CycleSim::new(&nl).unwrap();
    let stim = parse_stim(stim_text, 1).unwrap();
    stim.cycles
        .iter()
        .map(|cycle| {
            let out = sim.step(cycle);
            out.iter()
                .rev()
                .map(|&b| if b { '1' } else { '0' })
                .collect()
        })
        .collect()
}

#[test]
fn every_protocol_op_works_over_epoll() {
    let server = epoll_server();
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    assert!(c.ping().is_ok());
    assert_eq!(c.sim("ctr", "1 x5\n").unwrap(), refsim_outputs("1 x5\n"));
    let stats = c.stats().unwrap();
    assert_eq!(stats.models.len(), 1);
    assert_eq!(stats.models[0].name, "ctr");
    assert!(stats.models[0].requests >= 1);
    // unknown model is a typed error on a connection that stays usable
    assert!(matches!(
        c.sim("nope", "1 x2\n"),
        Err(ClientError::Server(_))
    ));
    assert_eq!(c.sim("ctr", "1 x3\n").unwrap(), refsim_outputs("1 x3\n"));
    c.shutdown().unwrap();
    server.join();
}

#[test]
fn epoll_and_threaded_agree_bit_for_bit() {
    let epoll = server_with(IoModel::EventLoop, 1024);
    let threaded = server_with(IoModel::Threaded, 1024);
    let stims = ["1 x1\n", "1 x7\n", "0 x3\n1 x4\n", "1 x16\n"];
    let mut ce = Client::connect(&epoll.local_addr().to_string()).unwrap();
    let mut ct = Client::connect(&threaded.local_addr().to_string()).unwrap();
    for stim in stims {
        let (a, b) = (ce.sim("ctr", stim).unwrap(), ct.sim("ctr", stim).unwrap());
        assert_eq!(a, b, "differential mismatch for {stim:?}");
        assert_eq!(
            a,
            refsim_outputs(stim),
            "both disagree with refsim for {stim:?}"
        );
    }
    // same typed error text for the same bad request
    let ea = ce.sim("nope", "1 x1\n").unwrap_err().to_string();
    let eb = ct.sim("nope", "1 x1\n").unwrap_err().to_string();
    assert_eq!(ea, eb, "typed errors must match across io models");
    for s in [epoll, threaded] {
        s.shutdown();
        s.join();
    }
}

#[test]
fn pipelined_non_reading_client_gets_every_reply_in_order() {
    let server = epoll_server();
    let addr = server.local_addr().to_string();
    let mut s = TcpStream::connect(&addr).unwrap();
    s.set_nodelay(true).unwrap();
    // 48 pipelined requests with multi-KB replies, written before reading a
    // single byte: the server must buffer under backpressure, never drop or
    // reorder
    let n = 48;
    let mut blob = Vec::new();
    for _ in 0..n {
        let body = Request::Sim {
            model: "ctr".to_string(),
            stim: StimPayload::Text("1 x200\n".to_string()),
            deadline_ms: None,
        }
        .encode();
        blob.extend_from_slice(body.as_bytes());
        blob.push(b'\n');
    }
    s.write_all(&blob).unwrap();
    let expected = refsim_outputs("1 x200\n");
    let mut reader = BufReader::new(s);
    for i in 0..n {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        match Response::decode(line.trim_end()).unwrap() {
            Response::SimResult { outputs, cycles } => {
                assert_eq!(cycles, 200, "reply {i}");
                assert_eq!(
                    outputs,
                    SimOutputs::Text(expected.clone()),
                    "reply {i} must be bit-exact"
                );
            }
            other => panic!("reply {i}: expected SimResult, got {other:?}"),
        }
    }
    server.shutdown();
    server.join();
}

#[test]
fn garbage_frames_get_typed_errors_and_the_connection_survives() {
    let server = epoll_server();
    let addr = server.local_addr().to_string();
    let mut s = TcpStream::connect(&addr).unwrap();
    s.write_all(b"\x00\xff\xfe not json\n").unwrap();
    let mut reader = BufReader::new(s.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        matches!(
            Response::decode(line.trim_end()),
            Ok(Response::Error { .. })
        ),
        "hostile bytes get a typed Error frame, got: {line:?}"
    );
    // connection is still usable for a real request
    let body = Request::Ping.encode();
    s.write_all(body.as_bytes()).unwrap();
    s.write_all(b"\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(matches!(
        Response::decode(line.trim_end()),
        Ok(Response::Pong { .. })
    ));
    server.shutdown();
    server.join();
}

#[test]
fn half_closed_client_still_receives_its_pending_reply() {
    let server = epoll_server();
    let addr = server.local_addr().to_string();
    let mut s = TcpStream::connect(&addr).unwrap();
    let body = Request::Sim {
        model: "ctr".to_string(),
        stim: StimPayload::Text("1 x8\n".to_string()),
        deadline_ms: None,
    }
    .encode();
    s.write_all(body.as_bytes()).unwrap();
    s.write_all(b"\n").unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap(); // FIN before the reply
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    let line = raw.lines().next().expect("reply arrives after half-close");
    assert!(
        matches!(Response::decode(line), Ok(Response::SimResult { .. })),
        "got {line:?}"
    );
    server.shutdown();
    server.join();
}

#[test]
fn partial_frame_then_close_does_not_wedge_the_loop() {
    let server = epoll_server();
    let addr = server.local_addr().to_string();
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(b"{\"op\":\"ping\"").unwrap(); // no newline, ever
    } // dropped: RST/FIN with a dangling partial frame
      // the loop must still serve the next client promptly
    let mut c = Client::connect(&addr).unwrap();
    assert!(c.ping().is_ok());
    server.shutdown();
    server.join();
}

#[test]
fn concurrent_clients_coalesce_and_get_their_own_lanes() {
    let server = epoll_server();
    let addr = server.local_addr().to_string();
    let stims: Vec<String> = (1..=8).map(|i| format!("1 x{}\n", i + 1)).collect();
    let handles: Vec<_> = stims
        .iter()
        .map(|stim| {
            let addr = addr.clone();
            let stim = stim.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                (stim.clone(), c.sim("ctr", &stim).unwrap())
            })
        })
        .collect();
    for h in handles {
        let (stim, got) = h.join().unwrap();
        assert_eq!(got, refsim_outputs(&stim), "lane scatter for {stim:?}");
    }
    let report = server.registry().stats();
    let m = report.iter().find(|m| m.name == "ctr").unwrap();
    assert!(m.batches <= m.requests, "batching stats are sane: {m:?}");
    server.shutdown();
    server.join();
}

#[test]
fn open_connection_gauge_tracks_live_sockets() {
    let server = epoll_server();
    let addr = server.local_addr().to_string();
    let held: Vec<Client> = (0..5).map(|_| Client::connect(&addr).unwrap()).collect();
    // the gauge is updated by the loop thread; give it a tick to accept
    std::thread::sleep(Duration::from_millis(100));
    let parsed = parse_exposition(&fetch_metrics(&addr).unwrap()).unwrap();
    let open = parsed
        .samples
        .iter()
        .find(|s| s.name == "c2nn_open_connections")
        .map(|s| s.value)
        .unwrap_or(-1.0);
    assert!(
        open >= 5.0,
        "5 held connections must be visible, gauge says {open}"
    );
    drop(held);
    server.shutdown();
    server.join();
}

#[test]
fn drain_closes_idle_connections_and_finishes_cleanly() {
    let server = epoll_server();
    let addr = server.local_addr().to_string();
    // an idle bystander connection, registered before the drain starts
    let mut idle = Client::connect(&addr).unwrap();
    idle.ping().unwrap();
    let mut trigger = Client::connect(&addr).unwrap();
    trigger.shutdown().unwrap(); // typed ShuttingDown ack inside
    server.join(); // the loop exits within the drain window

    // the bystander was closed with FIN, not wedged: its next request fails
    // with a transport error rather than hanging
    let err = idle.ping().unwrap_err();
    assert!(
        matches!(err, ClientError::Io(_) | ClientError::Protocol(_)),
        "idle conn closed at drain: {err:?}"
    );
    // and the port no longer accepts
    assert!(
        TcpStream::connect_timeout(&addr.parse().unwrap(), Duration::from_millis(200)).is_err(),
        "listener must be closed after drain"
    );
}

#[test]
fn oversized_http_head_is_rejected() {
    let server = epoll_server();
    let addr = server.local_addr().to_string();
    let mut s = TcpStream::connect(&addr).unwrap();
    s.write_all(b"GET /metrics HTTP/1.1\r\n").unwrap();
    // never finish the head; exceed the 16 KiB cap instead
    let filler = vec![b'a'; 1024];
    let mut closed = false;
    for _ in 0..64 {
        if s.write_all(b"X-Junk: ").is_err() || s.write_all(&filler).is_err() {
            closed = true;
            break;
        }
        let _ = s.write_all(b"\r\n");
    }
    if !closed {
        // the server must have closed on us; a read sees EOF promptly
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 256];
        let n = s.read(&mut buf).unwrap_or(0);
        assert_eq!(
            n, 0,
            "oversized head must close the connection, got {n} bytes"
        );
    }
    server.shutdown();
    server.join();
}
