//! Overload contract, end-to-end over TCP: past the admission budget every
//! reply is *typed* (`Overloaded` with an actionable retry hint — never a
//! dropped connection, never a garbled frame), admitted work stays
//! bit-exact, and the server returns to baseline once the storm passes.

use c2nn_circuits::generators::counter;
use c2nn_core::{compile, parse_stim, CompileOptions};
use c2nn_hal::Choice;
use c2nn_refsim::CycleSim;
use c2nn_serve::scheduler::BatchConfig;
use c2nn_serve::server::{spawn_server, ServerConfig, ServerHandle};
use c2nn_serve::{Client, ClientError, RegistryConfig};
use std::time::Duration;

const WIDTH: usize = 4;

fn refsim_outputs(stim_text: &str) -> Vec<String> {
    let nl = counter(WIDTH);
    let mut sim = CycleSim::new(&nl).unwrap();
    let stim = parse_stim(stim_text, 1).unwrap();
    stim.cycles
        .iter()
        .map(|cycle| {
            let out = sim.step(cycle);
            out.iter()
                .rev()
                .map(|&b| if b { '1' } else { '0' })
                .collect()
        })
        .collect()
}

fn budgeted_server(max_inflight: usize, max_wait: Duration) -> ServerHandle {
    let server = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        registry: RegistryConfig {
            byte_budget: usize::MAX,
            batch: BatchConfig {
                max_batch: 64,
                max_wait,
                backend: Choice::Named("scalar".to_string()),
            },
            max_inflight,
            ..RegistryConfig::default()
        },
        ..ServerConfig::default()
    })
    .unwrap();
    let nn = compile(&counter(WIDTH), CompileOptions::with_l(4)).unwrap();
    server.registry().install("ctr", nn).unwrap();
    server
}

/// Satellite: drive the server well past `max_inflight`, assert typed
/// `Overloaded` with a sane `retry_after_ms`, zero garbled replies for the
/// in-flight requests, and recovery to baseline afterwards.
#[test]
fn saturation_yields_typed_overloaded_and_recovers() {
    // budget 2, 8 clients × 4 requests = 4× saturation; a 30ms coalescing
    // window keeps permits held long enough that rejections must happen
    let server = budgeted_server(2, Duration::from_millis(30));
    let addr = server.local_addr().to_string();
    let stim = "1 x6\n";
    let expected = refsim_outputs(stim);

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                let (mut ok, mut overloaded, mut other) = (0u64, 0u64, 0u64);
                for _ in 0..4 {
                    match c.sim("ctr", stim) {
                        Ok(outputs) => {
                            // admitted work is never garbled by the storm
                            assert_eq!(outputs, expected);
                            ok += 1;
                        }
                        Err(ClientError::Overloaded { retry_after_ms }) => {
                            assert!(
                                (1..=1000).contains(&retry_after_ms),
                                "retry hint must be actionable, got {retry_after_ms}"
                            );
                            overloaded += 1;
                        }
                        Err(e) => {
                            eprintln!("non-typed failure under overload: {e}");
                            other += 1;
                        }
                    }
                }
                (ok, overloaded, other)
            })
        })
        .collect();
    let (mut ok, mut overloaded, mut other) = (0u64, 0u64, 0u64);
    for h in handles {
        let (o, ov, ot) = h.join().unwrap();
        ok += o;
        overloaded += ov;
        other += ot;
    }
    assert!(ok > 0, "some requests must be admitted");
    assert!(
        overloaded > 0,
        "4x saturation must trigger typed rejections"
    );
    assert_eq!(
        other, 0,
        "only sim results and typed Overloaded are allowed"
    );

    // recovery: the storm is over, the budget drains, baseline behaviour
    // returns without a restart
    std::thread::sleep(Duration::from_millis(100));
    let mut c = Client::connect(&addr).unwrap();
    assert_eq!(
        c.sim("ctr", stim).unwrap(),
        expected,
        "post-storm request is clean"
    );
    let stats = c.stats().unwrap();
    assert_eq!(stats.server.pressure, "nominal");
    assert_eq!(stats.server.inflight, 0);
    assert_eq!(stats.server.rejected_sims, overloaded);

    server.shutdown();
    server.join();
}

/// Degradation order: at Elevated pressure (half the budget) `load`s are
/// refused while `sim`s still go through.
#[test]
fn loads_shed_before_sims_under_pressure() {
    // budget 2: one in-flight sim ⇒ Elevated. The 300ms window holds the
    // sim in the batcher long enough to observe the refusal.
    let server = budgeted_server(2, Duration::from_millis(300));
    let addr = server.local_addr().to_string();

    let holder = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.sim("ctr", "1 x2\n").unwrap()
        })
    };
    // let the holder's permit land
    std::thread::sleep(Duration::from_millis(80));

    let mut c = Client::connect(&addr).unwrap();
    let nn = compile(&counter(WIDTH), CompileOptions::with_l(4)).unwrap();
    let err = c.load("late", &nn.to_json_string()).unwrap_err();
    assert!(
        matches!(err, ClientError::Overloaded { .. }),
        "load at Elevated pressure must be refused typed, got {err}"
    );

    assert_eq!(holder.join().unwrap(), refsim_outputs("1 x2\n"));
    // pressure gone: loads admitted again
    std::thread::sleep(Duration::from_millis(50));
    assert!(c.load("late", &nn.to_json_string()).is_ok());

    server.shutdown();
    server.join();
}

/// A request whose deadline cannot be met is shed *before* batch dispatch
/// with a typed `DeadlineExceeded`, and the shed is visible in the stats.
#[test]
fn expired_deadlines_are_shed_typed() {
    // 200ms coalescing window, 1ms deadline: the lane expires while queued
    let server = budgeted_server(64, Duration::from_millis(200));
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();

    let err = c.sim_with_deadline("ctr", "1 x4\n", Some(1)).unwrap_err();
    assert!(
        matches!(err, ClientError::DeadlineExceeded),
        "expected typed DeadlineExceeded, got {err}"
    );

    // no-deadline requests on the same connection still work
    assert_eq!(c.sim("ctr", "1 x4\n").unwrap(), refsim_outputs("1 x4\n"));
    let stats = c.stats().unwrap();
    let ctr = stats.models.iter().find(|m| m.name == "ctr").unwrap();
    assert!(ctr.deadline_exceeded >= 1, "{ctr:?}");

    server.shutdown();
    server.join();
}

/// Satellite (shutdown race): a connection mid-frame when shutdown begins
/// receives a typed `ShuttingDown` reply and then a clean EOF — not an
/// abrupt connection reset.
#[test]
fn shutdown_mid_frame_gets_typed_reply_then_clean_eof() {
    use c2nn_serve::protocol::Response;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let server = budgeted_server(64, Duration::from_millis(1));
    let addr = server.local_addr().to_string();

    let mut s = TcpStream::connect(&addr).unwrap();
    s.set_nodelay(true).unwrap();
    // first half of a ping frame, no terminator: the handler is now
    // mid-`read_frame` for this connection
    s.write_all(b"{\"op\":\"pi").unwrap();
    s.flush().unwrap();
    std::thread::sleep(Duration::from_millis(60));

    server.shutdown();
    // finish the frame inside the drain window
    std::thread::sleep(Duration::from_millis(60));
    s.write_all(b"ng\"}\n").unwrap();
    s.flush().unwrap();

    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match s.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => buf.extend_from_slice(&byte),
            Err(e) => panic!("mid-frame connection must not be reset at shutdown: {e}"),
        }
    }
    let text = String::from_utf8(buf).unwrap();
    let line = text.lines().next().expect("one reply frame before EOF");
    assert_eq!(
        Response::decode(line).unwrap(),
        Response::ShuttingDown,
        "mid-frame request must be answered with a typed ShuttingDown"
    );

    server.join();
}

/// An idle connection at shutdown sees a clean EOF, not a reset.
#[test]
fn idle_connection_gets_clean_eof_at_shutdown() {
    use std::io::Read;
    use std::net::TcpStream;

    let server = budgeted_server(64, Duration::from_millis(1));
    let addr = server.local_addr().to_string();
    let mut s = TcpStream::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(60)); // handler is in its read loop
    server.shutdown();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 16];
    match s.read(&mut buf) {
        Ok(0) => {} // clean EOF
        Ok(n) => panic!("idle connection got {n} unexpected bytes"),
        Err(e) => panic!("idle connection must get EOF, not {e}"),
    }
    server.join();
}

/// During drain every new request on a live connection is answered
/// `ShuttingDown` (typed), and new connections are no longer accepted.
#[test]
fn requests_during_drain_get_typed_shutting_down() {
    let server = budgeted_server(64, Duration::from_millis(1));
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    assert!(c.sim("ctr", "1 x2\n").is_ok());

    server.registry().admission().begin_drain();
    let err = c.sim("ctr", "1 x2\n").unwrap_err();
    assert!(
        matches!(err, ClientError::ShuttingDown),
        "draining server must answer typed ShuttingDown, got {err}"
    );

    server.shutdown();
    server.join();
}
