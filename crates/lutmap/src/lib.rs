//! # c2nn-lutmap
//!
//! Technology mapping for the C2NN pipeline: splits a combinational gate
//! netlist into a DAG of look-up tables with at most `L` inputs (paper
//! §III-B1 / Fig. 3). This is the from-scratch stand-in for the paper's
//! Yosys + ABC (FlowMap) step, with the SAT-based truth-table extraction
//! replaced by exact exhaustive cone evaluation (`2^L ≤ 65536` patterns,
//! bit-parallel).
//!
//! The mapper is depth-oriented: cuts are ranked by arrival depth first, so
//! the produced [`LutGraph`]'s depth shrinks roughly as `O((log₂ L)⁻¹)` —
//! the trend the paper's Figure 6 measures.
//!
//! ```
//! use c2nn_netlist::{NetlistBuilder, WordOps};
//! use c2nn_lutmap::{map_netlist, MapConfig};
//!
//! let mut b = NetlistBuilder::new("add4");
//! let a = b.input_word("a", 4);
//! let c = b.input_word("b", 4);
//! let s = b.add_word(&a, &c);
//! b.output_word(&s, "s");
//! let nl = b.finish().unwrap();
//!
//! let mapped = map_netlist(&nl, MapConfig::with_l(4)).unwrap();
//! assert!(mapped.validate(4).is_ok());
//! assert!(mapped.depth() <= 6);
//! ```

pub mod cone;
pub mod graph;
pub mod mapper;

pub use cone::{cone_gates, cone_truth_table, leaf_pattern};
pub use graph::{LutGraph, LutGraphError, LutNode, NodeFunc, NO_ORIGIN};
pub use mapper::{map_netlist, MapConfig, MapError};
