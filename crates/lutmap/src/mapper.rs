//! Depth-oriented technology mapping into ≤L-input LUTs.
//!
//! The paper delegates this step to ABC's FlowMap-derived mapper (Fig. 3,
//! footnote 3). This module implements the same contract from scratch:
//!
//! 1. **Cut enumeration** — bottom-up k-feasible cut computation with
//!    priority pruning (keep the best few cuts per net, ranked by arrival
//!    depth then size), the practical formulation of FlowMap's label
//!    computation;
//! 2. **Cover selection** — walk back from the outputs choosing each
//!    required net's best cut, instantiating one LUT per chosen cut;
//! 3. **Table generation** — exhaustive bit-parallel cone evaluation
//!    ([`crate::cone`]).
//!
//! Overlapping LUTs arise naturally (shared logic reachable through two
//! different cuts), exactly as the paper's Fig. 3 shows.

use crate::cone::cone_truth_table;
use crate::graph::{LutGraph, LutNode, NodeFunc};
use c2nn_netlist::{Driver, GateKind, Net, Netlist};
use std::collections::HashMap;

/// Mapper configuration.
#[derive(Clone, Copy, Debug)]
pub struct MapConfig {
    /// Maximum LUT inputs (the paper's `L`, 2..=16).
    pub max_inputs: usize,
    /// Cuts kept per net during enumeration (quality/runtime knob).
    pub cuts_per_net: usize,
    /// Keep AND/OR/NAND/NOR gates wider than `L` as known-function nodes
    /// instead of splitting them (paper §V: "polynomial libraries for known
    /// functions ... the equivalent of increasing L").
    pub wide_gates: bool,
}

impl MapConfig {
    /// Depth-oriented defaults for a given `L`.
    pub fn with_l(l: usize) -> Self {
        assert!((2..=16).contains(&l), "L must be in 2..=16, got {l}");
        MapConfig {
            max_inputs: l,
            cuts_per_net: 8,
            wide_gates: false,
        }
    }

    /// Enable the §V known-function shortcut.
    pub fn with_wide_gates(mut self) -> Self {
        self.wide_gates = true;
        self
    }
}

/// Mapping errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MapError {
    /// The netlist still contains flip-flops; run the FF cut first.
    Sequential,
    /// Structural problem in the input netlist.
    Netlist(String),
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::Sequential => {
                write!(
                    f,
                    "netlist has flip-flops; apply seq::prepare before mapping"
                )
            }
            MapError::Netlist(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for MapError {}

/// One k-feasible cut: sorted leaf nets plus its arrival depth.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Cut {
    leaves: Vec<Net>,
    depth: u32,
}

impl Cut {
    fn rank(&self) -> (u32, usize) {
        (self.depth, self.leaves.len())
    }
}

/// Merge two sorted leaf sets; `None` if the union exceeds `k`.
fn merge_leaves(a: &[Net], b: &[Net], k: usize) -> Option<Vec<Net>> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                i += 1;
                j += 1;
                x
            }
            (Some(&x), Some(&y)) if x < y => {
                i += 1;
                x
            }
            (Some(_), Some(&y)) => {
                j += 1;
                y
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!(),
        };
        if out.len() == k {
            return None;
        }
        out.push(next);
    }
    Some(out)
}

/// Map a combinational netlist into a [`LutGraph`] with LUTs of at most
/// `cfg.max_inputs` inputs.
pub fn map_netlist(nl: &Netlist, cfg: MapConfig) -> Result<LutGraph, MapError> {
    if !nl.is_combinational() {
        return Err(MapError::Sequential);
    }
    nl.validate()
        .map_err(|e| MapError::Netlist(e.to_string()))?;
    // Cut enumeration needs a k-bounded network; binarize so every gate has
    // at most 2 inputs (3 for Mux when L permits). Wide AND/OR family gates
    // survive unsplit when the known-function pass is on.
    let k0 = cfg.max_inputs;
    let is_wide = move |g: &c2nn_netlist::Gate| -> bool {
        g.inputs.len() > k0
            && matches!(
                g.kind,
                GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor
            )
    };
    let owned = if cfg.wide_gates {
        c2nn_netlist::binarize_with(nl, cfg.max_inputs >= 3, is_wide)
    } else {
        c2nn_netlist::binarize(nl, cfg.max_inputs >= 3)
    };
    let nl = &owned;
    // wide gate lookup by output net (on the binarized netlist)
    let wide_of: HashMap<Net, usize> = if cfg.wide_gates {
        nl.gates
            .iter()
            .enumerate()
            .filter(|(_, g)| is_wide(g))
            .map(|(gi, g)| (g.output, gi))
            .collect()
    } else {
        HashMap::new()
    };
    let drivers = nl.drivers().map_err(|e| MapError::Netlist(e.to_string()))?;
    let order = c2nn_netlist::topo_order(nl).map_err(|e| MapError::Netlist(e.to_string()))?;
    let k = cfg.max_inputs;

    // --- phase 1: cut enumeration ---------------------------------------
    // cuts[net] = pruned list of real cuts; `label` = best arrival depth.
    let mut cuts: Vec<Vec<Cut>> = vec![Vec::new(); nl.num_nets as usize];
    let mut label: Vec<u32> = vec![0; nl.num_nets as usize];
    for &inp in &nl.inputs {
        cuts[inp.index()] = vec![Cut {
            leaves: vec![inp],
            depth: 0,
        }];
    }
    for gi in order {
        let g = &nl.gates[gi];
        // wide known-function gates are cut barriers: only their trivial cut
        if wide_of.contains_key(&g.output) {
            let lbl = g.inputs.iter().map(|i| label[i.index()]).max().unwrap_or(0) + 1;
            label[g.output.index()] = lbl;
            cuts[g.output.index()] = vec![Cut {
                leaves: vec![g.output],
                depth: lbl,
            }];
            continue;
        }
        // Fold the gate's inputs pairwise, pruning after each fold: this
        // keeps wide variadic gates (xor_many etc.) from exploding the
        // cartesian product.
        let mut acc: Vec<Cut> = vec![Cut {
            leaves: Vec::new(),
            depth: 0,
        }];
        for &inp in &g.inputs {
            let inp_cuts: &[Cut] = &cuts[inp.index()];
            debug_assert!(
                !inp_cuts.is_empty(),
                "net {inp:?} has no cuts (undriven input of gate {gi}?)"
            );
            let mut next: Vec<Cut> = Vec::with_capacity(acc.len() * inp_cuts.len());
            for a in &acc {
                for b in inp_cuts {
                    if let Some(leaves) = merge_leaves(&a.leaves, &b.leaves, k) {
                        next.push(Cut {
                            leaves,
                            depth: a.depth.max(b.depth),
                        });
                    }
                }
            }
            prune(&mut next, cfg.cuts_per_net);
            // with a 2/3-bounded network and k ≥ 3 (or k = 2 with mux
            // expansion) the trivial cuts of the inputs always merge, so a
            // feasible cut exists
            assert!(!next.is_empty(), "no feasible cut — network not k-bounded");
            acc = next;
        }
        // finalize: depth of a cut = 1 + max(leaf labels)
        for c in &mut acc {
            c.depth = c.leaves.iter().map(|l| label[l.index()]).max().unwrap_or(0) + 1;
        }
        prune(&mut acc, cfg.cuts_per_net);
        let out = g.output;
        label[out.index()] = acc.first().map(|c| c.depth).unwrap_or(0);
        // parents may also use this net as a leaf (the trivial cut)
        let mut with_trivial = acc;
        with_trivial.push(Cut {
            leaves: vec![out],
            depth: label[out.index()],
        });
        cuts[out.index()] = with_trivial;
    }

    // --- phase 2: cover selection ----------------------------------------
    // required nets: gate-driven primary outputs, then chosen-cut leaves.
    let mut chosen: HashMap<Net, Vec<Net>> = HashMap::new(); // net -> leaves
    let mut stack: Vec<Net> = Vec::new();
    let need = |n: Net, stack: &mut Vec<Net>, chosen: &HashMap<Net, Vec<Net>>| {
        if !chosen.contains_key(&n) {
            stack.push(n);
        }
    };
    for &o in &nl.outputs {
        if matches!(drivers[o.index()], Driver::Gate(_)) {
            need(o, &mut stack, &chosen);
        }
    }
    while let Some(n) = stack.pop() {
        if chosen.contains_key(&n) {
            continue;
        }
        // a wide known-function gate covers itself
        if let Some(&gi) = wide_of.get(&n) {
            let ins = nl.gates[gi].inputs.clone();
            for &leaf in &ins {
                if matches!(drivers[leaf.index()], Driver::Gate(_)) {
                    need(leaf, &mut stack, &chosen);
                }
            }
            chosen.insert(n, ins);
            continue;
        }
        // best real cut (exclude the trivial self-cut)
        let best = cuts[n.index()]
            .iter()
            .filter(|c| !(c.leaves.len() == 1 && c.leaves[0] == n))
            .min_by_key(|c| c.rank())
            .unwrap_or_else(|| panic!("no real cut for required net {n:?}"))
            .clone();
        for &leaf in &best.leaves {
            if matches!(drivers[leaf.index()], Driver::Gate(_)) {
                need(leaf, &mut stack, &chosen);
            }
        }
        chosen.insert(n, best.leaves);
    }

    // --- phase 3: build the LutGraph in topological order ----------------
    // order chosen nets by netlist topo level so references go backwards
    let levels = c2nn_netlist::levelize(nl).map_err(|e| MapError::Netlist(e.to_string()))?;
    let mut chosen_nets: Vec<Net> = chosen.keys().copied().collect();
    chosen_nets.sort_by_key(|n| (levels[n.index()], n.0));

    let mut signal_of: HashMap<Net, u32> = HashMap::new();
    for (i, &inp) in nl.inputs.iter().enumerate() {
        signal_of.insert(inp, i as u32);
    }
    let num_inputs = nl.inputs.len();
    let mut nodes: Vec<LutNode> = Vec::with_capacity(chosen_nets.len());
    for &net in &chosen_nets {
        let leaves = &chosen[&net];
        let inputs: Vec<u32> = leaves
            .iter()
            .map(|l| {
                *signal_of
                    .get(l)
                    .unwrap_or_else(|| panic!("leaf {l:?} not yet defined — cover broken"))
            })
            .collect();
        let func = match wide_of.get(&net) {
            Some(&gi) => match nl.gates[gi].kind {
                GateKind::And => NodeFunc::WideAnd { invert: false },
                GateKind::Nand => NodeFunc::WideAnd { invert: true },
                GateKind::Or => NodeFunc::WideOr { invert: false },
                GateKind::Nor => NodeFunc::WideOr { invert: true },
                k => unreachable!("non-wide kind {k:?}"),
            },
            None => NodeFunc::Table(cone_truth_table(nl, &drivers, net, leaves)),
        };
        let id = (num_inputs + nodes.len()) as u32;
        nodes.push(LutNode {
            inputs,
            func,
            origin: net.0,
        });
        signal_of.insert(net, id);
    }

    // outputs: gate-driven map through signal_of; input-driven pass through;
    // undriven/constant handled via small const nodes
    let mut outputs = Vec::with_capacity(nl.outputs.len());
    for &o in &nl.outputs {
        match drivers[o.index()] {
            Driver::Gate(_) => outputs.push(signal_of[&o]),
            Driver::Input(_) => outputs.push(signal_of[&o]),
            Driver::FlipFlop(_) => unreachable!("combinational netlist"),
            Driver::None => return Err(MapError::Netlist(format!("output net {o:?} undriven"))),
        }
    }

    let g = LutGraph {
        name: nl.name.clone(),
        num_inputs,
        nodes,
        outputs,
    };
    debug_assert!(g.validate(k).is_ok());
    Ok(g)
}

/// Keep the `keep` best cuts by (depth, size), deduplicated.
fn prune(cuts: &mut Vec<Cut>, keep: usize) {
    cuts.sort_by(|a, b| {
        a.rank()
            .cmp(&b.rank())
            .then_with(|| a.leaves.cmp(&b.leaves))
    });
    cuts.dedup_by(|a, b| a.leaves == b.leaves);
    cuts.truncate(keep);
}

/// Map constant-driven outputs correctly: constants appear as 0-input gates
/// and become 0-input LUT nodes automatically through the cut machinery
/// (their only cut is the empty cut). This helper exists for documentation;
/// see `map_netlist`.
#[doc(hidden)]
pub fn _constant_note() {}

#[cfg(test)]
mod tests {
    use super::*;
    use c2nn_netlist::{NetlistBuilder, WordOps};

    fn assert_equivalent(nl: &Netlist, g: &LutGraph) {
        let n = nl.inputs.len();
        assert!(n <= 16, "exhaustive check limited to 16 inputs");
        let order = c2nn_netlist::topo_order(nl).unwrap();
        for x in 0..1u64 << n {
            let mut vals = vec![false; nl.num_nets as usize];
            let bits: Vec<bool> = (0..n).map(|j| x >> j & 1 == 1).collect();
            for (j, &inp) in nl.inputs.iter().enumerate() {
                vals[inp.index()] = bits[j];
            }
            for &gi in &order {
                let gate = &nl.gates[gi];
                let ins: Vec<bool> = gate.inputs.iter().map(|i| vals[i.index()]).collect();
                vals[gate.output.index()] = gate.kind.eval(&ins);
            }
            let want: Vec<bool> = nl.outputs.iter().map(|o| vals[o.index()]).collect();
            assert_eq!(g.eval(&bits), want, "x={x:b}");
        }
    }

    fn adder(width: usize) -> Netlist {
        let mut b = NetlistBuilder::new("add");
        let a = b.input_word("a", width);
        let c = b.input_word("b", width);
        let (s, cout) = {
            let cin = b.zero();
            b.adc(&a, &c, cin)
        };
        b.output_word(&s, "s");
        b.output(cout, "cout");
        b.finish().unwrap()
    }

    #[test]
    fn map_adder_all_l() {
        let nl = adder(4);
        for l in [2, 3, 4, 6, 8] {
            let g = map_netlist(&nl, MapConfig::with_l(l)).unwrap();
            g.validate(l).unwrap();
            assert_equivalent(&nl, &g);
        }
    }

    #[test]
    fn depth_shrinks_with_larger_l() {
        let nl = adder(6);
        let d3 = map_netlist(&nl, MapConfig::with_l(3)).unwrap().depth();
        let d8 = map_netlist(&nl, MapConfig::with_l(8)).unwrap().depth();
        assert!(d8 <= d3, "depth L=8 ({d8}) should be ≤ depth L=3 ({d3})");
        assert!(
            d8 < d3,
            "a 6-bit adder should benefit from L=8: {d8} vs {d3}"
        );
    }

    #[test]
    fn node_count_shrinks_with_larger_l() {
        let nl = adder(6);
        let n3 = map_netlist(&nl, MapConfig::with_l(3)).unwrap().nodes.len();
        let n8 = map_netlist(&nl, MapConfig::with_l(8)).unwrap().nodes.len();
        assert!(n8 <= n3, "nodes L=8 ({n8}) should be ≤ nodes L=3 ({n3})");
    }

    #[test]
    fn map_wide_gate() {
        // 9-input AND must split under L=3 (the paper's §V example)
        let mut b = NetlistBuilder::new("and9");
        let ins = b.input_word("x", 9);
        let out = b.and_many(&ins);
        b.output(out, "y");
        let nl = b.finish().unwrap();
        let g = map_netlist(&nl, MapConfig::with_l(3)).unwrap();
        g.validate(3).unwrap();
        assert!(
            g.nodes.len() >= 4,
            "9-AND at L=3 needs ≥4 LUTs, got {}",
            g.nodes.len()
        );
        assert_equivalent(&nl, &g);
    }

    #[test]
    fn map_mux_tree() {
        let mut b = NetlistBuilder::new("mux4");
        let d = b.input_word("d", 4);
        let s = b.input_word("s", 2);
        let m0 = b.mux(s[0], d[0], d[1]);
        let m1 = b.mux(s[0], d[2], d[3]);
        let y = b.mux(s[1], m0, m1);
        b.output(y, "y");
        let nl = b.finish().unwrap();
        for l in [2, 3, 6] {
            let g = map_netlist(&nl, MapConfig::with_l(l)).unwrap();
            assert_equivalent(&nl, &g);
        }
        // at L=6 the whole 4:1 mux fits in one LUT
        let g6 = map_netlist(&nl, MapConfig::with_l(6)).unwrap();
        assert_eq!(g6.nodes.len(), 1);
        assert_eq!(g6.depth(), 1);
    }

    #[test]
    fn passthrough_and_constant_outputs() {
        let mut b = NetlistBuilder::new("pc");
        let a = b.input("a");
        let one = b.one();
        b.output(a, "same");
        b.output(one, "k1");
        let nl = b.finish().unwrap();
        let g = map_netlist(&nl, MapConfig::with_l(4)).unwrap();
        assert_eq!(g.eval(&[true]), vec![true, true]);
        assert_eq!(g.eval(&[false]), vec![false, true]);
    }

    #[test]
    fn sequential_rejected() {
        let mut b = NetlistBuilder::new("s");
        let clk = b.clock("clk");
        let d = b.input("d");
        let q = b.dff(d, clk, false);
        b.output(q, "q");
        let nl = b.finish().unwrap();
        assert_eq!(
            map_netlist(&nl, MapConfig::with_l(4)).unwrap_err(),
            MapError::Sequential
        );
    }

    #[test]
    fn random_circuits_equivalent() {
        // structured pseudo-random DAGs over 8 inputs
        let mut seed = 0xdeadbeefu64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..8 {
            let mut b = NetlistBuilder::new(format!("rand{trial}"));
            let mut pool: Vec<_> = b.input_word("x", 8);
            for _ in 0..40 {
                let i = pool[rng() as usize % pool.len()];
                let j = pool[rng() as usize % pool.len()];
                let k = pool[rng() as usize % pool.len()];
                let g = match rng() % 6 {
                    0 => b.and2(i, j),
                    1 => b.or2(i, j),
                    2 => b.xor2(i, j),
                    3 => b.not(i),
                    4 => b.mux(i, j, k),
                    _ => b.nand2(i, j),
                };
                pool.push(g);
            }
            let outs: Vec<_> = (0..6).map(|_| pool[rng() as usize % pool.len()]).collect();
            for (i, &o) in outs.iter().enumerate() {
                b.output(o, &format!("y{i}"));
            }
            let nl = b.finish().unwrap();
            for l in [3, 5, 7] {
                let g = map_netlist(&nl, MapConfig::with_l(l)).unwrap();
                g.validate(l).unwrap();
                assert_equivalent(&nl, &g);
            }
        }
    }
}
