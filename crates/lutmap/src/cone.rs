//! Cone extraction and bit-parallel truth-table computation.
//!
//! The paper obtains each LUT's truth table with a SAT solver (Fig. 3).
//! For L ≤ 16 exhaustive evaluation is both exact and faster: we simulate
//! the logic cone between the cut leaves and its root for all `2^k` leaf
//! assignments at once, 64 assignments per machine word.

use c2nn_boolfn::Lut;
use c2nn_netlist::{Driver, Net, Netlist};
use std::collections::HashMap;

/// Compute the truth table of `root` as a function of `leaves` by simulating
/// the cone in between. Every path from `root` upward must terminate at a
/// leaf, a constant gate, or a 0-input gate — guaranteed when `leaves` is a
/// legal cut of `root`.
///
/// Table convention: variable `j` is `leaves[j]`, row index bit `j` gives its
/// value (matching [`Lut`]).
pub fn cone_truth_table(nl: &Netlist, drivers: &[Driver], root: Net, leaves: &[Net]) -> Lut {
    let k = leaves.len();
    assert!(k <= 16, "cone too wide for exhaustive evaluation: {k}");
    let rows = 1usize << k;
    let words = rows.div_ceil(64);
    // leaf patterns: bit i of pattern_j = (i >> j) & 1
    let mut values: HashMap<Net, Vec<u64>> = HashMap::new();
    for (j, &leaf) in leaves.iter().enumerate() {
        values.insert(leaf, leaf_pattern(j, words));
    }
    let bits = eval_net(nl, drivers, root, &mut values, words);
    Lut::from_bits(k as u8, bits)
}

/// The canonical truth-table input pattern for variable `j`.
pub fn leaf_pattern(j: usize, words: usize) -> Vec<u64> {
    if j < 6 {
        // within one word: alternating runs of 2^j bits
        let base: u64 = match j {
            0 => 0xAAAA_AAAA_AAAA_AAAA,
            1 => 0xCCCC_CCCC_CCCC_CCCC,
            2 => 0xF0F0_F0F0_F0F0_F0F0,
            3 => 0xFF00_FF00_FF00_FF00,
            4 => 0xFFFF_0000_FFFF_0000,
            5 => 0xFFFF_FFFF_0000_0000,
            _ => unreachable!(),
        };
        vec![base; words]
    } else {
        // whole words alternate in runs of 2^(j-6)
        let run = 1usize << (j - 6);
        (0..words)
            .map(|w| if (w / run) % 2 == 1 { !0u64 } else { 0u64 })
            .collect()
    }
}

fn eval_net(
    nl: &Netlist,
    drivers: &[Driver],
    net: Net,
    values: &mut HashMap<Net, Vec<u64>>,
    words: usize,
) -> Vec<u64> {
    if let Some(v) = values.get(&net) {
        return v.clone();
    }
    let gi = match drivers[net.index()] {
        Driver::Gate(gi) => gi,
        other => {
            panic!("cone reached {net:?} driven by {other:?} without crossing a leaf — illegal cut")
        }
    };
    let gate = &nl.gates[gi];
    let ins: Vec<Vec<u64>> = gate
        .inputs
        .iter()
        .map(|&i| eval_net(nl, drivers, i, values, words))
        .collect();
    let mut out = vec![0u64; words];
    let mut scratch: Vec<u64> = vec![0; gate.inputs.len()];
    for (w, o) in out.iter_mut().enumerate() {
        for (s, iv) in scratch.iter_mut().zip(&ins) {
            *s = iv[w];
        }
        *o = gate.kind.eval_word(&scratch);
    }
    values.insert(net, out.clone());
    out
}

/// Collect the set of gate indices in the cone of `root` bounded by
/// `leaves` (diagnostics / cost estimation).
pub fn cone_gates(nl: &Netlist, drivers: &[Driver], root: Net, leaves: &[Net]) -> Vec<usize> {
    let mut seen: Vec<usize> = Vec::new();
    let mut stack = vec![root];
    let mut visited: HashMap<Net, ()> = leaves.iter().map(|&l| (l, ())).collect();
    while let Some(n) = stack.pop() {
        if visited.contains_key(&n) && n != root {
            continue;
        }
        if let Driver::Gate(gi) = drivers[n.index()] {
            if visited.insert(n, ()).is_none() || n == root {
                seen.push(gi);
                for &i in &nl.gates[gi].inputs {
                    if !visited.contains_key(&i) {
                        stack.push(i);
                    }
                }
            }
        }
    }
    seen.sort_unstable();
    seen.dedup();
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2nn_netlist::{NetlistBuilder, WordOps};

    #[test]
    fn leaf_patterns_encode_row_bits() {
        for j in 0..10usize {
            let words = (1usize << 10) / 64;
            let p = leaf_pattern(j, words);
            for row in 0..1usize << 10 {
                let bit = p[row / 64] >> (row % 64) & 1 == 1;
                assert_eq!(bit, row >> j & 1 == 1, "var {j} row {row}");
            }
        }
    }

    #[test]
    fn cone_of_full_adder_sum() {
        let mut b = NetlistBuilder::new("fa");
        let a = b.input("a");
        let c = b.input("b");
        let cin = b.input("cin");
        let (sum, carry) = b.adc(&[a], &[c], cin);
        b.output(sum[0], "s");
        b.output(carry, "cout");
        let nl = b.finish().unwrap();
        let drivers = nl.drivers().unwrap();
        let t = cone_truth_table(&nl, &drivers, nl.outputs[0], &[a, c, cin]);
        for row in 0..8u64 {
            let total = (row & 1) + (row >> 1 & 1) + (row >> 2 & 1);
            assert_eq!(t.get(row), total % 2 == 1, "row {row}");
        }
        let tc = cone_truth_table(&nl, &drivers, nl.outputs[1], &[a, c, cin]);
        for row in 0..8u64 {
            let total = (row & 1) + (row >> 1 & 1) + (row >> 2 & 1);
            assert_eq!(tc.get(row), total >= 2, "carry row {row}");
        }
    }

    #[test]
    fn cone_with_constant_inside() {
        let mut b = NetlistBuilder::new("c");
        let a = b.input("a");
        let one = b.one();
        let x = b.xor2(a, one); // = not a
        b.output(x, "y");
        let nl = b.finish().unwrap();
        let drivers = nl.drivers().unwrap();
        let t = cone_truth_table(&nl, &drivers, nl.outputs[0], &[a]);
        assert!(t.get(0));
        assert!(!t.get(1));
    }

    #[test]
    fn wide_cone_multiword() {
        // 8-input parity: table has 256 rows = 4 words
        let mut b = NetlistBuilder::new("p");
        let ins = b.input_word("x", 8);
        let p = b.reduce_xor(&ins);
        b.output(p, "p");
        let nl = b.finish().unwrap();
        let drivers = nl.drivers().unwrap();
        let t = cone_truth_table(&nl, &drivers, nl.outputs[0], &ins);
        for row in 0..256u64 {
            assert_eq!(t.get(row), row.count_ones() % 2 == 1);
        }
    }

    #[test]
    fn cone_gates_collects_cone_only() {
        let mut b = NetlistBuilder::new("g");
        let a = b.input("a");
        let c = b.input("b");
        let x = b.and2(a, c);
        let _unrelated = b.or2(a, c);
        b.output(x, "x");
        let nl = b.finish().unwrap();
        let drivers = nl.drivers().unwrap();
        let gates = cone_gates(&nl, &drivers, nl.outputs[0], &[a, c]);
        assert_eq!(gates.len(), 1);
    }
}
