//! The computation graph of LUTs (paper Fig. 3): the mapper's output and the
//! NN compiler's input.

use c2nn_boolfn::Lut;

/// The Boolean function a node computes.
///
/// `Table` is the ordinary ≤L-input LUT. The `Wide*` variants implement the
/// paper's §V *known-function polynomial library*: gates whose polynomial is
/// trivially sparse (AND = one monomial; OR = one complemented monomial) can
/// bypass the `L` limit entirely — "the equivalent of increasing L".
#[derive(Clone, Debug, PartialEq)]
pub enum NodeFunc {
    /// Arbitrary truth table; variable `j` is `inputs[j]`.
    Table(Lut),
    /// AND of all inputs (`invert` makes it NAND). Any arity.
    WideAnd { invert: bool },
    /// OR of all inputs (`invert` makes it NOR). Any arity.
    WideOr { invert: bool },
}

/// `origin` value for nodes with no single source net (hand-built graphs,
/// synthesized helper nodes).
pub const NO_ORIGIN: u32 = u32::MAX;

/// One node: a Boolean function of earlier signals.
///
/// Signals are numbered densely: ids `0..num_inputs` are the primary inputs
/// of the mapped circuit (in port order), id `num_inputs + i` is the output
/// of `nodes[i]`. Nodes are stored in topological order (a node only
/// references earlier signals).
#[derive(Clone, Debug, PartialEq)]
pub struct LutNode {
    /// Input signal ids.
    pub inputs: Vec<u32>,
    pub func: NodeFunc,
    /// Provenance: the source-netlist `Net` id whose value this node
    /// computes, or [`NO_ORIGIN`]. Stable across mapper configurations, so
    /// downstream IRs can report per-net structure.
    pub origin: u32,
}

impl LutNode {
    /// An ordinary table node (`inputs.len()` must equal `lut.inputs()`),
    /// with no recorded provenance.
    pub fn table(inputs: Vec<u32>, lut: Lut) -> Self {
        LutNode {
            inputs,
            func: NodeFunc::Table(lut),
            origin: NO_ORIGIN,
        }
    }

    /// Evaluate on the values of this node's inputs.
    pub fn eval(&self, in_vals: &[bool]) -> bool {
        debug_assert_eq!(in_vals.len(), self.inputs.len());
        match &self.func {
            NodeFunc::Table(lut) => {
                let row: u64 = in_vals
                    .iter()
                    .enumerate()
                    .map(|(j, &b)| (b as u64) << j)
                    .sum();
                lut.get(row)
            }
            NodeFunc::WideAnd { invert } => in_vals.iter().all(|&b| b) != *invert,
            NodeFunc::WideOr { invert } => in_vals.iter().any(|&b| b) != *invert,
        }
    }
}

/// A mapped circuit: DAG of nodes over primary-input signals.
#[derive(Clone, Debug, PartialEq)]
pub struct LutGraph {
    pub name: String,
    pub num_inputs: usize,
    pub nodes: Vec<LutNode>,
    /// Output signal ids, in port order (may reference inputs directly for
    /// pass-through outputs).
    pub outputs: Vec<u32>,
}

/// Errors from [`LutGraph::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LutGraphError {
    /// Node references a signal defined later (or itself).
    ForwardReference { node: usize, signal: u32 },
    /// Node input count does not match its truth table.
    ArityMismatch { node: usize },
    /// Output references an unknown signal.
    BadOutput { index: usize, signal: u32 },
    /// A table node exceeds the LUT input bound.
    TooWide {
        node: usize,
        inputs: usize,
        bound: usize,
    },
}

impl std::fmt::Display for LutGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LutGraphError::ForwardReference { node, signal } => {
                write!(f, "node {node} references later signal {signal}")
            }
            LutGraphError::ArityMismatch { node } => {
                write!(f, "node {node}: input count != table width")
            }
            LutGraphError::BadOutput { index, signal } => {
                write!(f, "output {index} references unknown signal {signal}")
            }
            LutGraphError::TooWide {
                node,
                inputs,
                bound,
            } => write!(f, "node {node} has {inputs} inputs > bound {bound}"),
        }
    }
}

impl std::error::Error for LutGraphError {}

impl LutGraph {
    /// Total number of signals (inputs + node outputs).
    pub fn num_signals(&self) -> usize {
        self.num_inputs + self.nodes.len()
    }

    /// Check structural invariants; `bound` is the mapper's `L` and applies
    /// to table nodes only (wide known-function nodes exist to exceed it).
    pub fn validate(&self, bound: usize) -> Result<(), LutGraphError> {
        for (i, n) in self.nodes.iter().enumerate() {
            let own_id = (self.num_inputs + i) as u32;
            if let NodeFunc::Table(lut) = &n.func {
                if n.inputs.len() != lut.inputs() as usize {
                    return Err(LutGraphError::ArityMismatch { node: i });
                }
                if n.inputs.len() > bound {
                    return Err(LutGraphError::TooWide {
                        node: i,
                        inputs: n.inputs.len(),
                        bound,
                    });
                }
            }
            for &s in &n.inputs {
                if s >= own_id {
                    return Err(LutGraphError::ForwardReference { node: i, signal: s });
                }
            }
        }
        for (i, &o) in self.outputs.iter().enumerate() {
            if o as usize >= self.num_signals() {
                return Err(LutGraphError::BadOutput {
                    index: i,
                    signal: o,
                });
            }
        }
        Ok(())
    }

    /// Logic level per signal: inputs are level 0, a node is
    /// `1 + max(input levels)`.
    pub fn levels(&self) -> Vec<u32> {
        let mut lv = vec![0u32; self.num_signals()];
        for (i, n) in self.nodes.iter().enumerate() {
            let l = n.inputs.iter().map(|&s| lv[s as usize]).max().unwrap_or(0) + 1;
            lv[self.num_inputs + i] = l;
        }
        lv
    }

    /// Depth of the graph (max level over all signals).
    pub fn depth(&self) -> u32 {
        self.levels().into_iter().max().unwrap_or(0)
    }

    /// Evaluate the whole graph on one input assignment (reference
    /// semantics; used for equivalence tests).
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs);
        let mut vals = vec![false; self.num_signals()];
        vals[..self.num_inputs].copy_from_slice(inputs);
        for (i, n) in self.nodes.iter().enumerate() {
            let in_vals: Vec<bool> = n.inputs.iter().map(|&s| vals[s as usize]).collect();
            vals[self.num_inputs + i] = n.eval(&in_vals);
        }
        self.outputs.iter().map(|&o| vals[o as usize]).collect()
    }

    /// Total number of LUT table bits (a memory-cost proxy; wide
    /// known-function nodes store no table).
    pub fn table_bits(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match &n.func {
                NodeFunc::Table(lut) => lut.num_rows(),
                _ => 0,
            })
            .sum()
    }

    /// Histogram of node input counts, indexed by arity.
    pub fn arity_histogram(&self) -> Vec<usize> {
        let max = self.nodes.iter().map(|n| n.inputs.len()).max().unwrap_or(0);
        let mut h = vec![0usize; max + 1];
        for n in &self.nodes {
            h[n.inputs.len()] += 1;
        }
        h
    }

    /// Number of wide known-function nodes.
    pub fn wide_nodes(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| !matches!(n.func, NodeFunc::Table(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_chain() -> LutGraph {
        // 3 inputs; n0 = x0^x1; n1 = n0^x2; outputs [n1]
        LutGraph {
            name: "xc".into(),
            num_inputs: 3,
            nodes: vec![
                LutNode::table(vec![0, 1], Lut::xor(2)),
                LutNode::table(vec![3, 2], Lut::xor(2)),
            ],
            outputs: vec![4],
        }
    }

    #[test]
    fn eval_and_levels() {
        let g = xor_chain();
        g.validate(2).unwrap();
        for x in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|j| x >> j & 1 == 1).collect();
            assert_eq!(g.eval(&bits), vec![x.count_ones() % 2 == 1]);
        }
        assert_eq!(g.depth(), 2);
        assert_eq!(g.levels(), vec![0, 0, 0, 1, 2]);
    }

    #[test]
    fn validate_catches_forward_reference() {
        let mut g = xor_chain();
        g.nodes[0].inputs[0] = 4;
        assert!(matches!(
            g.validate(2),
            Err(LutGraphError::ForwardReference { .. })
        ));
    }

    #[test]
    fn validate_catches_width_bound() {
        let g = xor_chain();
        assert!(matches!(g.validate(1), Err(LutGraphError::TooWide { .. })));
    }

    #[test]
    fn wide_nodes_bypass_the_bound() {
        let g = LutGraph {
            name: "w".into(),
            num_inputs: 9,
            nodes: vec![LutNode {
                inputs: (0..9).collect(),
                func: NodeFunc::WideAnd { invert: false },
                origin: NO_ORIGIN,
            }],
            outputs: vec![9],
        };
        g.validate(3).unwrap(); // 9 > 3 but wide nodes are exempt
        assert_eq!(g.wide_nodes(), 1);
        assert_eq!(g.table_bits(), 0);
        for x in [0u32, 0b111111111, 0b101010101] {
            let bits: Vec<bool> = (0..9).map(|j| x >> j & 1 == 1).collect();
            assert_eq!(g.eval(&bits), vec![x == 0b111111111]);
        }
    }

    #[test]
    fn wide_or_and_inversions() {
        type Case = (NodeFunc, fn(u32) -> bool);
        let cases: Vec<Case> = vec![
            (NodeFunc::WideOr { invert: false }, |x| x != 0),
            (NodeFunc::WideOr { invert: true }, |x| x == 0),
            (NodeFunc::WideAnd { invert: true }, |x| x != 0b1111),
        ];
        for (func, f) in cases {
            let g = LutGraph {
                name: "w".into(),
                num_inputs: 4,
                nodes: vec![LutNode {
                    inputs: (0..4).collect(),
                    func: func.clone(),
                    origin: NO_ORIGIN,
                }],
                outputs: vec![4],
            };
            for x in 0..16u32 {
                let bits: Vec<bool> = (0..4).map(|j| x >> j & 1 == 1).collect();
                assert_eq!(g.eval(&bits), vec![f(x)], "{func:?} x={x:04b}");
            }
        }
    }

    #[test]
    fn passthrough_output() {
        let mut g = xor_chain();
        g.outputs.push(1); // input 1 directly
        let out = g.eval(&[false, true, false]);
        assert!(out[1]);
    }

    #[test]
    fn arity_histogram_counts() {
        let g = xor_chain();
        assert_eq!(g.arity_histogram(), vec![0, 0, 2]);
    }
}
