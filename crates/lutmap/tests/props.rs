//! Property tests for the technology mapper: for arbitrary circuits and
//! parameters, the mapped LUT graph is a legal cover computing exactly the
//! original function.

use c2nn_lutmap::{map_netlist, MapConfig};
use c2nn_netlist::{topo_order, GateKind, Net, Netlist, NetlistBuilder};
use proptest::prelude::*;

fn random_netlist(seed: u64, gates: usize, wide: bool) -> Netlist {
    let mut s = seed | 1;
    let mut rng = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut b = NetlistBuilder::new("prop");
    let mut pool: Vec<Net> = b.input_word("x", 9);
    for _ in 0..gates {
        let i = pool[rng() as usize % pool.len()];
        let j = pool[rng() as usize % pool.len()];
        let k = pool[rng() as usize % pool.len()];
        let g = match rng() % 8 {
            0 => b.and2(i, j),
            1 => b.or2(i, j),
            2 => b.xor2(i, j),
            3 => b.nand2(i, j),
            4 => b.mux(i, j, k),
            5 => b.not(i),
            6 if wide => {
                // a wide gate over 5-9 distinct pool members
                let n = 5 + (rng() % 5) as usize;
                let ins: Vec<Net> = (0..n).map(|_| pool[rng() as usize % pool.len()]).collect();
                let kind = if rng() % 2 == 0 {
                    GateKind::And
                } else {
                    GateKind::Or
                };
                b.gate(kind, ins)
            }
            _ => b.xnor2(i, j),
        };
        pool.push(g);
    }
    for o in 0..4 {
        let n = pool[pool.len() - 1 - (rng() as usize % (gates / 2 + 1))];
        b.output(n, &format!("y{o}"));
    }
    b.finish().unwrap()
}

fn eval_netlist(nl: &Netlist, x: u64) -> Vec<bool> {
    let mut vals = vec![false; nl.num_nets as usize];
    for (j, &inp) in nl.inputs.iter().enumerate() {
        vals[inp.index()] = x >> j & 1 == 1;
    }
    for gi in topo_order(nl).unwrap() {
        let g = &nl.gates[gi];
        let ins: Vec<bool> = g.inputs.iter().map(|n| vals[n.index()]).collect();
        vals[g.output.index()] = g.kind.eval(&ins);
    }
    nl.outputs.iter().map(|o| vals[o.index()]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, .. ProptestConfig::default() })]

    /// Mapping at any L is exact and respects the width bound.
    #[test]
    fn mapping_is_exact(seed in 1u64.., gates in 5usize..70, l in 2usize..9) {
        let nl = random_netlist(seed, gates, false);
        let g = map_netlist(&nl, MapConfig::with_l(l)).unwrap();
        g.validate(l).unwrap();
        for x in 0..512u64 {
            let bits: Vec<bool> = (0..9).map(|j| x >> j & 1 == 1).collect();
            prop_assert_eq!(g.eval(&bits), eval_netlist(&nl, x), "x={:09b}", x);
        }
    }

    /// The wide-gate pass stays exact on circuits with wide AND/OR gates.
    #[test]
    fn wide_pass_is_exact(seed in 1u64.., gates in 5usize..50, l in 3usize..6) {
        let nl = random_netlist(seed, gates, true);
        let plain = map_netlist(&nl, MapConfig::with_l(l)).unwrap();
        let wide = map_netlist(&nl, MapConfig::with_l(l).with_wide_gates()).unwrap();
        wide.validate(l).unwrap();
        for x in (0..512u64).step_by(7) {
            let bits: Vec<bool> = (0..9).map(|j| x >> j & 1 == 1).collect();
            let want = eval_netlist(&nl, x);
            prop_assert_eq!(plain.eval(&bits), want.clone());
            prop_assert_eq!(wide.eval(&bits), want);
        }
    }

    /// Depth never increases when L grows (same cut budget).
    #[test]
    fn depth_monotone_in_l(seed in 1u64.., gates in 10usize..60) {
        let nl = random_netlist(seed, gates, false);
        let mut prev = u32::MAX;
        for l in [2usize, 4, 8] {
            let d = map_netlist(&nl, MapConfig::with_l(l)).unwrap().depth();
            prop_assert!(d <= prev, "depth rose from {} to {} at L={}", prev, d, l);
            prev = d;
        }
    }

    /// Every mapped node is actually reachable from an output (no bloat).
    #[test]
    fn cover_has_no_dead_nodes(seed in 1u64.., gates in 5usize..50, l in 3usize..7) {
        let nl = random_netlist(seed, gates, false);
        let g = map_netlist(&nl, MapConfig::with_l(l)).unwrap();
        let mut live = vec![false; g.num_signals()];
        let mut stack: Vec<u32> = g.outputs.clone();
        while let Some(s) = stack.pop() {
            if live[s as usize] {
                continue;
            }
            live[s as usize] = true;
            if s as usize >= g.num_inputs {
                stack.extend(&g.nodes[s as usize - g.num_inputs].inputs);
            }
        }
        for (i, _) in g.nodes.iter().enumerate() {
            prop_assert!(live[g.num_inputs + i], "node {} is dead", i);
        }
    }
}
