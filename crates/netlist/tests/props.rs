//! Property tests for the netlist transforms: every rewrite
//! (binarization, buffer collapse, dead sweep, BLIF round-trip) must
//! preserve the circuit's function exactly.

use c2nn_netlist::{
    binarize, collapse_buffers, sweep_dead, topo_order, GateKind, Net, Netlist, NetlistBuilder,
};
use proptest::prelude::*;

/// Build a random combinational netlist from a seed (deterministic).
fn random_netlist(seed: u64, gates: usize) -> Netlist {
    let mut s = seed | 1;
    let mut rng = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut b = NetlistBuilder::new("prop");
    let mut pool: Vec<Net> = b.input_word("x", 8);
    for _ in 0..gates {
        let pick = |rng: &mut dyn FnMut() -> u64, pool: &[Net]| pool[rng() as usize % pool.len()];
        let i = pick(&mut rng, &pool);
        let j = pick(&mut rng, &pool);
        let k = pick(&mut rng, &pool);
        let l = pick(&mut rng, &pool);
        let g = match rng() % 9 {
            0 => b.and2(i, j),
            1 => b.or2(i, j),
            2 => b.xor2(i, j),
            3 => b.nand2(i, j),
            4 => b.nor2(i, j),
            5 => b.xnor2(i, j),
            6 => b.mux(i, j, k),
            7 => b.gate(GateKind::And, vec![i, j, k, l]), // variadic
            _ => b.gate(GateKind::Xor, vec![i, j, k]),
        };
        pool.push(g);
    }
    for o in 0..4 {
        let n = pool[pool.len() - 1 - (rng() as usize % (gates / 2 + 1))];
        b.output(n, &format!("y{o}"));
    }
    b.finish().unwrap()
}

fn eval(nl: &Netlist, x: u64) -> u64 {
    let mut vals = vec![false; nl.num_nets as usize];
    for (j, &inp) in nl.inputs.iter().enumerate() {
        vals[inp.index()] = x >> j & 1 == 1;
    }
    for gi in topo_order(nl).unwrap() {
        let g = &nl.gates[gi];
        let ins: Vec<bool> = g.inputs.iter().map(|n| vals[n.index()]).collect();
        vals[g.output.index()] = g.kind.eval(&ins);
    }
    nl.outputs
        .iter()
        .enumerate()
        .map(|(j, &o)| (vals[o.index()] as u64) << j)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn binarize_preserves_function(seed in 1u64.., gates in 5usize..60, keep_mux in any::<bool>()) {
        let nl = random_netlist(seed, gates);
        let bin = binarize(&nl, keep_mux);
        bin.validate().unwrap();
        // every gate ≤ 2 inputs (3 for kept muxes)
        let bound = if keep_mux { 3 } else { 2 };
        for g in &bin.gates {
            prop_assert!(g.inputs.len() <= bound, "{:?} has {} inputs", g.kind, g.inputs.len());
            if !keep_mux {
                prop_assert!(g.kind != GateKind::Mux);
            }
        }
        for x in 0..256u64 {
            prop_assert_eq!(eval(&bin, x), eval(&nl, x), "x={:08b}", x);
        }
    }

    #[test]
    fn collapse_and_sweep_preserve_function(seed in 1u64.., gates in 5usize..60) {
        let nl = random_netlist(seed, gates);
        let collapsed = collapse_buffers(&nl);
        collapsed.validate().unwrap();
        let (swept, _) = sweep_dead(&nl);
        swept.validate().unwrap();
        for x in 0..256u64 {
            let want = eval(&nl, x);
            prop_assert_eq!(eval(&collapsed, x), want);
            prop_assert_eq!(eval(&swept, x), want);
        }
    }

    #[test]
    fn blif_roundtrip_preserves_function(seed in 1u64.., gates in 5usize..40) {
        let nl = random_netlist(seed, gates);
        let back = c2nn_netlist::from_blif(&c2nn_netlist::to_blif(&nl)).unwrap();
        prop_assert_eq!(back.inputs.len(), nl.inputs.len());
        prop_assert_eq!(back.outputs.len(), nl.outputs.len());
        for x in 0..256u64 {
            prop_assert_eq!(eval(&back, x), eval(&nl, x), "x={:08b}", x);
        }
    }

    #[test]
    fn sweep_never_grows(seed in 1u64.., gates in 5usize..60) {
        let nl = random_netlist(seed, gates);
        let (swept, _) = sweep_dead(&nl);
        prop_assert!(swept.gates.len() <= nl.gates.len());
        prop_assert!(swept.num_nets <= nl.num_nets);
    }
}
