//! Panic-freedom fuzzing of the BLIF reader.
//!
//! Like the Verilog frontend, `from_blif` consumes untrusted files. The
//! only acceptable outcomes are a validated netlist or a `BlifError` with
//! a line number — never a panic.

use c2nn_netlist::from_blif;
use proptest::prelude::*;

/// Calling from_blif is the assertion: a panic fails the test. On error,
/// the diagnostic must carry a line number and a message.
fn assert_total(src: &str) {
    if let Err(e) = from_blif(src) {
        assert!(e.line >= 1, "BLIF error lost its line: {e:?}");
        assert!(!e.message.is_empty(), "empty BLIF diagnostic");
    }
}

/// Tokens steering random soup into the BLIF grammar.
const VOCAB: &[&str] = &[
    ".model", ".inputs", ".outputs", ".names", ".latch", ".end", ".subckt", "top", "a", "b", "y",
    "clk", "q", "re", "0", "1", "-", "2", "01", "10", "--", "0-1", "\\", "#", "comment", "\n",
    "\t", " ", "é", "\u{0}",
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 400, .. ProptestConfig::default() })]

    /// Arbitrary byte soup, interpreted as (lossy) UTF-8.
    #[test]
    fn byte_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        assert_total(&src);
    }

    /// Token soup from the BLIF vocabulary reaches much deeper reader
    /// states than raw bytes (covers, latches, continuation lines).
    #[test]
    fn token_soup_never_panics(idx in proptest::collection::vec(0usize..VOCAB.len(), 0..200)) {
        let mut src = String::new();
        for i in idx {
            src.push_str(VOCAB[i]);
            src.push(' ');
        }
        assert_total(&src);
    }

    /// Same soup inside a well-formed model skeleton, so the reader gets
    /// past the header and exercises body parsing.
    #[test]
    fn wrapped_token_soup_never_panics(idx in proptest::collection::vec(0usize..VOCAB.len(), 0..120)) {
        let mut body = String::new();
        for i in idx {
            body.push_str(VOCAB[i]);
            body.push(' ');
        }
        let src = format!(".model top\n.inputs a b\n.outputs y\n{body}\n.end\n");
        assert_total(&src);
    }
}

#[test]
fn malformed_corpus_yields_typed_errors() {
    // each entry: (source, substring expected in the error message)
    let corpus: &[(&str, &str)] = &[
        // cover row width disagrees with the .names arity
        (
            ".model m\n.inputs a b\n.outputs y\n.names a b y\n0 1\n.end\n",
            "",
        ),
        // invalid cover character
        (
            ".model m\n.inputs a\n.outputs y\n.names a y\n2 1\n.end\n",
            "invalid cover character",
        ),
        // invalid output character in a cover row
        (
            ".model m\n.inputs a\n.outputs y\n.names a y\n1 x\n.end\n",
            "",
        ),
        // constant cover with a bad value
        (".model m\n.outputs y\n.names y\n7\n.end\n", ""),
        // .latch with too few tokens
        (".model m\n.inputs a\n.outputs q\n.latch a\n.end\n", ""),
        // body before .model
        (".inputs a\n.model m\n.end\n", ""),
        // truncated: no .end, dangling continuation backslash
        (".model m\n.inputs a\n.outputs y\n.names a \\\n", ""),
    ];
    for (src, needle) in corpus {
        match from_blif(src) {
            Err(e) => {
                assert!(e.line >= 1, "no line number for {src:?}");
                assert!(
                    e.message.contains(needle),
                    "error {:?} for {src:?} does not mention {needle:?}",
                    e.message
                );
            }
            Ok(_) => panic!("malformed BLIF accepted: {src:?}"),
        }
    }
}

#[test]
fn unknown_directives_are_tolerated() {
    // SIS emits decorations like .default_input_arrival; the reader skips
    // unrecognized dot-directives rather than failing the whole file
    let src =
        ".model m\n.inputs a\n.outputs y\n.default_input_arrival 0 0\n.names a y\n1 1\n.end\n";
    assert!(from_blif(src).is_ok());
}

#[test]
fn trailing_continuation_line_is_not_dropped() {
    // a cover row continued with `\` onto the final line used to be
    // silently discarded if the file ended without a newline after it
    let src = ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 \\\n1\n.end\n";
    let nl = from_blif(src).expect("continued cover row should parse");
    assert_eq!(nl.name, "m");
}
