//! And-inverter graphs (AIGs).
//!
//! The paper's §II-B lists AIGs among the standard circuit representations,
//! and footnote 5 notes that the minimum LUT size `L = 2` corresponds to an
//! AIG "if AND and NOT gates are used". This module makes that concrete:
//! any netlist converts to a structurally hashed AIG (2-input ANDs with
//! complemented edges) and back, giving the workspace the same
//! normalization step ABC applies before mapping.

use crate::build::NetlistBuilder;
use crate::ir::{Driver, GateKind, Net, Netlist, NetlistError};
use std::collections::HashMap;

/// An AIG edge: a node index with an optional complement flag, packed as
/// `node << 1 | complement`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Lit(u32);

impl Lit {
    /// The constant-false literal (node 0 uncomplemented).
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal (node 0 complemented).
    pub const TRUE: Lit = Lit(1);

    fn new(node: u32, complement: bool) -> Lit {
        Lit(node << 1 | complement as u32)
    }

    /// The node this literal points to.
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the edge is complemented.
    pub fn complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// The negation of this literal.
    #[allow(clippy::should_implement_trait)] // AIG convention; `!lit` reads worse
    pub fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

/// One AIG node: the AND of two literals (node 0 is the constant; nodes
/// `1..=num_inputs` are the primary inputs).
#[derive(Clone, Copy, Debug)]
struct AigNode {
    a: Lit,
    b: Lit,
}

/// A combinational and-inverter graph.
pub struct Aig {
    num_inputs: usize,
    /// AND nodes, indexed from `1 + num_inputs`.
    ands: Vec<AigNode>,
    /// Output literals, in port order.
    pub outputs: Vec<Lit>,
    strash: HashMap<(Lit, Lit), Lit>,
    pub name: String,
}

impl Aig {
    /// An empty AIG with `num_inputs` primary inputs.
    pub fn new(name: impl Into<String>, num_inputs: usize) -> Self {
        Aig {
            num_inputs,
            ands: Vec::new(),
            outputs: Vec::new(),
            strash: HashMap::new(),
            name: name.into(),
        }
    }

    /// The literal of primary input `i`.
    pub fn input(&self, i: usize) -> Lit {
        assert!(i < self.num_inputs);
        Lit::new(1 + i as u32, false)
    }

    /// Number of AND nodes (the classic AIG size metric).
    pub fn num_ands(&self) -> usize {
        self.ands.len()
    }

    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    fn first_and(&self) -> u32 {
        1 + self.num_inputs as u32
    }

    /// Structurally hashed AND with constant propagation.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // normalize operand order for hashing
        let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        if a == Lit::FALSE || b == Lit::FALSE || a == b.not() {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE || a == b {
            return a;
        }
        if let Some(&l) = self.strash.get(&(a, b)) {
            return l;
        }
        let node = self.first_and() + self.ands.len() as u32;
        self.ands.push(AigNode { a, b });
        let l = Lit::new(node, false);
        self.strash.insert((a, b), l);
        l
    }

    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(a.not(), b.not()).not()
    }

    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let t1 = self.and(a, b.not());
        let t2 = self.and(a.not(), b);
        self.or(t1, t2)
    }

    pub fn mux(&mut self, s: Lit, a: Lit, b: Lit) -> Lit {
        // s ? b : a
        let t1 = self.and(s, b);
        let t2 = self.and(s.not(), a);
        self.or(t1, t2)
    }

    /// Evaluate all outputs for a packed input assignment.
    pub fn eval(&self, inputs: u64) -> Vec<bool> {
        let mut vals = vec![false; 1 + self.num_inputs + self.ands.len()];
        for i in 0..self.num_inputs {
            vals[1 + i] = inputs >> i & 1 == 1;
        }
        let lit_val = |vals: &[bool], l: Lit| vals[l.node() as usize] ^ l.complemented();
        for (k, n) in self.ands.iter().enumerate() {
            vals[self.first_and() as usize + k] = lit_val(&vals, n.a) && lit_val(&vals, n.b);
        }
        self.outputs.iter().map(|&o| lit_val(&vals, o)).collect()
    }

    /// Longest path from any input to any output, in AND nodes.
    pub fn depth(&self) -> usize {
        let mut d = vec![0usize; 1 + self.num_inputs + self.ands.len()];
        for (k, n) in self.ands.iter().enumerate() {
            let idx = self.first_and() as usize + k;
            d[idx] = 1 + d[n.a.node() as usize].max(d[n.b.node() as usize]);
        }
        self.outputs
            .iter()
            .map(|o| d[o.node() as usize])
            .max()
            .unwrap_or(0)
    }

    /// Convert back to a gate netlist (And/Not gates only — the paper's
    /// footnote-5 `L = 2` form).
    pub fn to_netlist(&self) -> Netlist {
        let mut b = NetlistBuilder::new(self.name.clone());
        let ins: Vec<Net> = (0..self.num_inputs)
            .map(|i| b.input(&format!("i{i}")))
            .collect();
        let mut node_net: Vec<Net> = Vec::with_capacity(1 + self.num_inputs + self.ands.len());
        node_net.push(b.zero());
        node_net.extend(ins);
        let lit_net = |b: &mut NetlistBuilder, node_net: &[Net], l: Lit| -> Net {
            let n = node_net[l.node() as usize];
            if l.complemented() {
                b.not(n)
            } else {
                n
            }
        };
        for n in &self.ands {
            let a = lit_net(&mut b, &node_net, n.a);
            let bb = lit_net(&mut b, &node_net, n.b);
            let g = b.and2(a, bb);
            node_net.push(g);
        }
        for (i, &o) in self.outputs.iter().enumerate() {
            let n = lit_net(&mut b, &node_net, o);
            b.output(n, &format!("o{i}"));
        }
        b.finish().expect("AIG netlist is valid by construction")
    }
}

/// Convert a combinational netlist to a structurally hashed AIG.
pub fn to_aig(nl: &Netlist) -> Result<Aig, NetlistError> {
    assert!(
        nl.is_combinational(),
        "AIG conversion expects a combinational netlist; cut flip-flops first"
    );
    nl.validate()?;
    let drivers = nl.drivers()?;
    let order = crate::graph::topo_order(nl)?;
    let mut aig = Aig::new(nl.name.clone(), nl.inputs.len());
    let mut lit_of: HashMap<Net, Lit> = HashMap::new();
    for (i, &n) in nl.inputs.iter().enumerate() {
        lit_of.insert(n, aig.input(i));
    }
    for gi in order {
        let g = &nl.gates[gi];
        let ins: Vec<Lit> = g.inputs.iter().map(|n| lit_of[n]).collect();
        let out = match g.kind {
            GateKind::Const0 => Lit::FALSE,
            GateKind::Const1 => Lit::TRUE,
            GateKind::Buf => ins[0],
            GateKind::Not => ins[0].not(),
            GateKind::And | GateKind::Nand => {
                let mut acc = Lit::TRUE;
                for &l in &ins {
                    acc = aig.and(acc, l);
                }
                if g.kind == GateKind::Nand {
                    acc.not()
                } else {
                    acc
                }
            }
            GateKind::Or | GateKind::Nor => {
                let mut acc = Lit::FALSE;
                for &l in &ins {
                    acc = aig.or(acc, l);
                }
                if g.kind == GateKind::Nor {
                    acc.not()
                } else {
                    acc
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                let mut acc = Lit::FALSE;
                for &l in &ins {
                    acc = aig.xor(acc, l);
                }
                if g.kind == GateKind::Xnor {
                    acc.not()
                } else {
                    acc
                }
            }
            GateKind::Mux => aig.mux(ins[0], ins[1], ins[2]),
        };
        lit_of.insert(g.output, out);
    }
    for &o in &nl.outputs {
        let l = match drivers[o.index()] {
            Driver::None => return Err(NetlistError::Undriven(o)),
            _ => lit_of[&o],
        };
        aig.outputs.push(l);
    }
    Ok(aig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::WordOps;

    fn eval_netlist(nl: &Netlist, x: u64) -> Vec<bool> {
        let mut vals = vec![false; nl.num_nets as usize];
        for (j, &inp) in nl.inputs.iter().enumerate() {
            vals[inp.index()] = x >> j & 1 == 1;
        }
        for gi in crate::graph::topo_order(nl).unwrap() {
            let g = &nl.gates[gi];
            let ins: Vec<bool> = g.inputs.iter().map(|n| vals[n.index()]).collect();
            vals[g.output.index()] = g.kind.eval(&ins);
        }
        nl.outputs.iter().map(|o| vals[o.index()]).collect()
    }

    #[test]
    fn literal_packing() {
        let l = Lit::new(5, true);
        assert_eq!(l.node(), 5);
        assert!(l.complemented());
        assert_eq!(l.not().node(), 5);
        assert!(!l.not().complemented());
        assert_eq!(Lit::TRUE, Lit::FALSE.not());
    }

    #[test]
    fn strashing_and_constants() {
        let mut a = Aig::new("t", 2);
        let (x, y) = (a.input(0), a.input(1));
        let g1 = a.and(x, y);
        let g2 = a.and(y, x);
        assert_eq!(g1, g2, "commuted ANDs must hash together");
        assert_eq!(a.num_ands(), 1);
        assert_eq!(a.and(x, Lit::FALSE), Lit::FALSE);
        assert_eq!(a.and(x, Lit::TRUE), x);
        assert_eq!(a.and(x, x), x);
        assert_eq!(a.and(x, x.not()), Lit::FALSE);
    }

    #[test]
    fn adder_roundtrip() {
        let mut b = NetlistBuilder::new("add");
        let x = b.input_word("a", 4);
        let y = b.input_word("b", 4);
        let s = b.add_word(&x, &y);
        b.output_word(&s, "s");
        let nl = b.finish().unwrap();
        let aig = to_aig(&nl).unwrap();
        assert!(aig.num_ands() > 0);
        let back = aig.to_netlist();
        // only AND/NOT/const gates in the reconstruction
        for g in &back.gates {
            assert!(matches!(
                g.kind,
                GateKind::And | GateKind::Not | GateKind::Const0 | GateKind::Const1
            ));
        }
        for v in 0..256u64 {
            let want = eval_netlist(&nl, v);
            assert_eq!(aig.eval(v), want, "aig at {v:08b}");
            assert_eq!(eval_netlist(&back, v), want, "roundtrip at {v:08b}");
        }
    }

    #[test]
    fn all_gate_kinds_convert() {
        let mut b = NetlistBuilder::new("kinds");
        let x = b.input_word("x", 5);
        let outs = [
            b.gate(GateKind::And, x.clone()),
            b.gate(GateKind::Or, x.clone()),
            b.gate(GateKind::Xor, x.clone()),
            b.gate(GateKind::Nand, x.clone()),
            b.gate(GateKind::Nor, x.clone()),
            b.gate(GateKind::Xnor, x.clone()),
            b.mux(x[0], x[1], x[2]),
            b.not(x[3]),
        ];
        for (i, &o) in outs.iter().enumerate() {
            b.output(o, &format!("y{i}"));
        }
        let nl = b.finish().unwrap();
        let aig = to_aig(&nl).unwrap();
        for v in 0..32u64 {
            assert_eq!(aig.eval(v), eval_netlist(&nl, v), "v={v:05b}");
        }
    }

    #[test]
    fn depth_is_logarithmic_for_balanced_trees() {
        // and_many builds a balanced tree through binarize? — here the AIG
        // itself folds linearly; check depth is at least sane
        let mut b = NetlistBuilder::new("w");
        let x = b.input_word("x", 16);
        let y = b.and_many(&x);
        b.output(y, "y");
        let nl = b.finish().unwrap();
        let aig = to_aig(&nl).unwrap();
        assert_eq!(aig.num_ands(), 15);
        assert!(aig.depth() >= 4 && aig.depth() <= 15);
    }

    #[test]
    fn aig_netlist_is_l2_form() {
        // the footnote-5 scenario: the AIG netlist is exactly the 2-bounded
        // AND/NOT network the paper associates with L = 2
        let mut b = NetlistBuilder::new("m");
        let x = b.input_word("x", 4);
        let p = b.reduce_xor(&x);
        let q = b.and_many(&x[..3]);
        b.output(p, "p");
        b.output(q, "q");
        let nl = b.finish().unwrap();
        let aig_nl = to_aig(&nl).unwrap().to_netlist();
        for g in &aig_nl.gates {
            assert!(g.inputs.len() <= 2);
        }
        for v in 0..16u64 {
            assert_eq!(eval_netlist(&aig_nl, v), eval_netlist(&nl, v));
        }
    }
}
