//! Berkeley Logic Interchange Format (BLIF) import/export.
//!
//! BLIF is the lingua franca of the open logic-synthesis ecosystem (ABC,
//! Yosys `write_blif`, VTR): supporting it lets circuits flow between this
//! workspace and the tools the paper builds on. The exporter binarizes
//! first so every `.names` block is at most 2 inputs; the importer accepts
//! general `.names` covers (both 1- and 0-terminated, `-` don't-cares) and
//! `.latch` lines.

use crate::build::NetlistBuilder;
use crate::graph::binarize;
use crate::ir::{GateKind, Net, Netlist};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Errors while parsing BLIF text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlifError {
    pub message: String,
    pub line: usize,
}

impl std::fmt::Display for BlifError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BLIF error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BlifError {}

/// Render a netlist as BLIF. Net names come from the netlist where
/// available (sanitized), `n<id>` otherwise.
pub fn to_blif(nl: &Netlist) -> String {
    let nl = binarize(nl, false); // ≤2-input gates, muxes expanded
    let name_of = |n: Net| -> String {
        match nl.net_name(n) {
            Some(s) => {
                let clean: String = s
                    .chars()
                    .map(|c| {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            c
                        } else {
                            '_'
                        }
                    })
                    .collect();
                format!("{clean}_n{}", n.0)
            }
            None => format!("n{}", n.0),
        }
    };
    let mut s = String::new();
    let _ = writeln!(
        s,
        ".model {}",
        if nl.name.is_empty() { "top" } else { &nl.name }
    );
    let _ = writeln!(
        s,
        ".inputs {}",
        nl.inputs
            .iter()
            .map(|&n| name_of(n))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let _ = writeln!(
        s,
        ".outputs {}",
        nl.outputs
            .iter()
            .enumerate()
            .map(|(i, _)| format!("out{i}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for ff in &nl.flipflops {
        let _ = writeln!(
            s,
            ".latch {} {} re clk {}",
            name_of(ff.d),
            name_of(ff.q),
            ff.init as u8
        );
    }
    for g in &nl.gates {
        let ins: Vec<String> = g.inputs.iter().map(|&n| name_of(n)).collect();
        let out = name_of(g.output);
        let _ = writeln!(s, ".names {} {}", ins.join(" "), out);
        match (g.kind, g.inputs.len()) {
            (GateKind::Const0, _) => { /* empty cover = constant 0 */ }
            (GateKind::Const1, _) => {
                let _ = writeln!(s, "1");
            }
            (GateKind::Buf, _) => {
                let _ = writeln!(s, "1 1");
            }
            (GateKind::Not, _) => {
                let _ = writeln!(s, "0 1");
            }
            (GateKind::And, 1) | (GateKind::Or, 1) | (GateKind::Xor, 1) => {
                let _ = writeln!(s, "1 1");
            }
            (GateKind::And, 2) => {
                let _ = writeln!(s, "11 1");
            }
            (GateKind::Or, 2) => {
                let _ = writeln!(s, "1- 1\n-1 1");
            }
            (GateKind::Xor, 2) => {
                let _ = writeln!(s, "10 1\n01 1");
            }
            (GateKind::Nand, 2) => {
                let _ = writeln!(s, "0- 1\n-0 1");
            }
            (GateKind::Nor, 2) => {
                let _ = writeln!(s, "00 1");
            }
            (GateKind::Xnor, 2) => {
                let _ = writeln!(s, "11 1\n00 1");
            }
            (k, n) => unreachable!("binarized netlist left a {k:?}/{n}"),
        }
    }
    // output aliases (outputs may point at inputs or shared nets)
    for (i, &o) in nl.outputs.iter().enumerate() {
        let _ = writeln!(s, ".names {} out{i}", name_of(o));
        let _ = writeln!(s, "1 1");
    }
    let _ = writeln!(s, ".end");
    s
}

/// Parse a BLIF model into a netlist.
pub fn from_blif(text: &str) -> Result<Netlist, BlifError> {
    // join continuation lines (trailing backslash)
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending = String::new();
    let mut pending_line = 0;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim().to_string();
        if line.is_empty() {
            continue;
        }
        if pending.is_empty() {
            pending_line = i + 1;
        }
        if let Some(stripped) = line.strip_suffix('\\') {
            pending.push_str(stripped);
            pending.push(' ');
            continue;
        }
        pending.push_str(&line);
        logical.push((pending_line, std::mem::take(&mut pending)));
    }
    // a file ending in a continuation backslash still has a pending line
    if !pending.trim().is_empty() {
        logical.push((pending_line, pending));
    }

    // semantic errors discovered after the scan (undefined outputs,
    // validation) point at the last line of the file rather than line 0
    let last_line = logical.last().map(|(l, _)| *l).unwrap_or(1);

    let mut b = NetlistBuilder::new("blif");
    let mut by_name: HashMap<String, Net> = HashMap::new();
    // each output name keeps the line of its `.outputs` declaration
    let mut outputs: Vec<(usize, String)> = Vec::new();
    let err = |line: usize, m: &str| BlifError {
        message: m.to_string(),
        line,
    };
    // first pass: declare inputs and collect every referenced name as a
    // placeholder so covers can reference forward
    let mut model_name = String::from("blif");
    let mut seen_model = false;
    // pending gate covers: (line, input names, output name, cover rows)
    struct NamesBlock {
        line: usize,
        inputs: Vec<String>,
        output: String,
        rows: Vec<(String, char)>,
    }
    let mut blocks: Vec<NamesBlock> = Vec::new();
    let mut latches: Vec<(usize, String, String, bool)> = Vec::new();
    let mut current: Option<NamesBlock> = None;
    for (line, text) in &logical {
        let mut toks = text.split_whitespace();
        let Some(head) = toks.next() else { continue };
        if head.starts_with('.') {
            if let Some(blk) = current.take() {
                blocks.push(blk);
            }
        }
        if !seen_model && head != ".model" {
            return Err(err(*line, &format!("expected .model before '{head}'")));
        }
        match head {
            ".model" => {
                model_name = toks.next().unwrap_or("blif").to_string();
                seen_model = true;
            }
            ".inputs" => {
                for t in toks {
                    let n = b.input(t);
                    by_name.insert(t.to_string(), n);
                }
            }
            ".outputs" => {
                outputs.extend(toks.map(|t| (*line, t.to_string())));
            }
            ".names" => {
                let names: Vec<String> = toks.map(|t| t.to_string()).collect();
                if names.is_empty() {
                    return Err(err(*line, ".names needs at least an output"));
                }
                let output = names.last().unwrap().clone();
                let inputs = names[..names.len() - 1].to_vec();
                current = Some(NamesBlock {
                    line: *line,
                    inputs,
                    output,
                    rows: Vec::new(),
                });
            }
            ".latch" => {
                let d = toks
                    .next()
                    .ok_or_else(|| err(*line, ".latch needs input"))?;
                let q = toks
                    .next()
                    .ok_or_else(|| err(*line, ".latch needs output"))?;
                let rest: Vec<&str> = toks.collect();
                let init = matches!(rest.last(), Some(&"1"));
                latches.push((*line, d.to_string(), q.to_string(), init));
            }
            ".end" => {}
            ".exdc" | ".subckt" | ".gate" => {
                return Err(err(*line, &format!("unsupported construct {head}")));
            }
            _ if head.starts_with('.') => {
                // ignore unknown directives (e.g. .default_input_arrival)
            }
            _ => {
                // cover row inside a .names block
                let blk = current
                    .as_mut()
                    .ok_or_else(|| err(*line, "cover row outside .names"))?;
                if blk.inputs.is_empty() {
                    // constant: single token "1" or "0"
                    let v = head.chars().next().unwrap_or('0');
                    if !matches!(v, '0' | '1') {
                        return Err(err(
                            *line,
                            &format!("constant cover must be 0 or 1, got '{v}'"),
                        ));
                    }
                    blk.rows.push((String::new(), v));
                } else {
                    let pat = head.to_string();
                    if let Some(c) = pat.chars().find(|c| !matches!(c, '0' | '1' | '-')) {
                        return Err(err(*line, &format!("invalid cover character '{c}'")));
                    }
                    let out = toks
                        .next()
                        .and_then(|t| t.chars().next())
                        .ok_or_else(|| err(*line, "cover row missing output value"))?;
                    if !matches!(out, '0' | '1') {
                        return Err(err(
                            *line,
                            &format!("cover output must be 0 or 1, got '{out}'"),
                        ));
                    }
                    if pat.len() != blk.inputs.len() {
                        return Err(err(*line, "cover width != input count"));
                    }
                    blk.rows.push((pat, out));
                }
            }
        }
    }
    if let Some(blk) = current.take() {
        blocks.push(blk);
    }

    // declare latch outputs as placeholders (they act as sources)
    let clk = b.clock("clk");
    let get_net = |b: &mut NetlistBuilder, by_name: &mut HashMap<String, Net>, name: &str| {
        *by_name
            .entry(name.to_string())
            .or_insert_with(|| b.fresh(Some(name)))
    };
    for (_, _, q, _) in &latches {
        get_net(&mut b, &mut by_name, q);
    }
    // elaborate .names blocks in order; inputs may be placeholders
    for blk in &blocks {
        let k = blk.inputs.len();
        if k > 20 {
            return Err(err(blk.line, "cover too wide (>20 inputs)"));
        }
        let in_nets: Vec<Net> = blk
            .inputs
            .iter()
            .map(|n| get_net(&mut b, &mut by_name, n))
            .collect();
        // build the truth table from the cover
        let rows = 1usize << k;
        let words = rows.div_ceil(64);
        let mut bits = vec![0u64; words];
        let one_cover = blk.rows.iter().all(|(_, v)| *v == '1');
        let zero_cover = blk.rows.iter().all(|(_, v)| *v == '0');
        if !(one_cover || zero_cover) {
            return Err(err(blk.line, "mixed 0/1 cover"));
        }
        for row in 0..rows {
            let mut covered = false;
            for (pat, _) in &blk.rows {
                let hit = pat.chars().enumerate().all(|(i, c)| match c {
                    '1' => row >> i & 1 == 1,
                    '0' => row >> i & 1 == 0,
                    '-' => true,
                    _ => false,
                });
                if pat.is_empty() {
                    covered = true;
                    break;
                }
                if hit {
                    covered = true;
                    break;
                }
            }
            let value = if one_cover { covered } else { !covered };
            if value {
                bits[row / 64] |= 1 << (row % 64);
            }
        }
        // the constant-0 function is an empty 1-cover
        if blk.rows.is_empty() {
            bits.iter_mut().for_each(|w| *w = 0);
        }
        let f = if k == 0 {
            b.constant(bits[0] & 1 == 1)
        } else {
            b.synth_truth_table(&in_nets, &bits)
        };
        let dst = get_net(&mut b, &mut by_name, &blk.output);
        b.connect(f, dst);
    }
    for (line, d, q, init) in &latches {
        let dn = *by_name
            .get(d)
            .ok_or_else(|| err(*line, &format!("latch input '{d}' undefined")))?;
        let qn = by_name[q.as_str()];
        b.push_ff_raw(dn, qn, clk, None, None, false, *init);
    }
    let mut nl = b.finish_unchecked();
    nl.name = model_name;
    for (decl_line, out) in &outputs {
        let n = by_name
            .get(out)
            .ok_or_else(|| err(*decl_line, &format!("output '{out}' never defined")))?;
        nl.outputs.push(*n);
    }
    let nl = crate::graph::collapse_buffers(&nl);
    nl.validate().map_err(|e| BlifError {
        message: e.to_string(),
        line: last_line,
    })?;
    Ok(nl)
}

/// Convenience: structural round-trip used by tests and tools.
pub fn roundtrip(nl: &Netlist) -> Result<Netlist, BlifError> {
    from_blif(&to_blif(nl))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::NetlistBuilder;
    use crate::graph::topo_order;

    fn eval(nl: &Netlist, x: u64) -> u64 {
        let mut vals = vec![false; nl.num_nets as usize];
        for (j, &inp) in nl.inputs.iter().enumerate() {
            vals[inp.index()] = x >> j & 1 == 1;
        }
        for gi in topo_order(nl).unwrap() {
            let g = &nl.gates[gi];
            let ins: Vec<bool> = g.inputs.iter().map(|n| vals[n.index()]).collect();
            vals[g.output.index()] = g.kind.eval(&ins);
        }
        nl.outputs
            .iter()
            .enumerate()
            .map(|(j, &o)| (vals[o.index()] as u64) << j)
            .sum()
    }

    #[test]
    fn export_contains_structure() {
        let mut b = NetlistBuilder::new("fa");
        let a = b.input("a");
        let c = b.input("b");
        let s = b.xor2(a, c);
        let g = b.and2(a, c);
        b.output(s, "s");
        b.output(g, "c");
        let nl = b.finish().unwrap();
        let blif = to_blif(&nl);
        assert!(blif.starts_with(".model fa"));
        assert!(blif.contains(".inputs"));
        assert!(blif.contains(".outputs out0 out1"));
        assert!(blif.contains(".names"));
        assert!(blif.trim_end().ends_with(".end"));
    }

    #[test]
    fn comb_roundtrip_is_equivalent() {
        let mut b = NetlistBuilder::new("mix");
        let x = b.input_word("x", 5);
        let a = b.and_many(&x[..3]);
        let o = b.or_many(&x[2..]);
        let m = b.mux(x[0], a, o);
        let p = b.xor_many(&x);
        b.output(m, "m");
        b.output(p, "p");
        let nl = b.finish().unwrap();
        let back = roundtrip(&nl).unwrap();
        assert_eq!(back.inputs.len(), 5);
        for v in 0..32u64 {
            assert_eq!(eval(&back, v), eval(&nl, v), "x={v:05b}");
        }
    }

    #[test]
    fn sequential_roundtrip_preserves_behavior() {
        use crate::word::WordOps;
        let mut b = NetlistBuilder::new("ctr");
        let clk = b.clock("clk");
        let en = b.input("en");
        let q = b.fresh_word("q", 4);
        let inc = b.inc_word(&q);
        let next = b.mux_word(en, &q, &inc);
        b.connect_ff_word(&next, &q, clk, None, None, 0, 0b1010);
        b.output_word(&q, "q");
        let nl = b.finish().unwrap();
        let back = roundtrip(&nl).unwrap();
        assert_eq!(back.flipflops.len(), 4);
        // inits preserved
        let inits: Vec<bool> = back.flipflops.iter().map(|f| f.init).collect();
        assert_eq!(inits.iter().filter(|&&x| x).count(), 2);
        // behavior: step both for 10 cycles
        let cut_a = crate::seq::prepare(&nl).unwrap();
        let cut_b = crate::seq::prepare(&back).unwrap();
        let mut sa = cut_a.state_init.clone();
        let mut sb = cut_b.state_init.clone();
        for cyc in 0..10 {
            let en_v = cyc % 3 != 0;
            let full_a: Vec<bool> = std::iter::once(en_v).chain(sa.iter().copied()).collect();
            let full_b: Vec<bool> = std::iter::once(en_v).chain(sb.iter().copied()).collect();
            let ra = eval_all(&cut_a.comb, &full_a);
            let rb = eval_all(&cut_b.comb, &full_b);
            assert_eq!(
                &ra[..cut_a.num_primary_outputs],
                &rb[..cut_b.num_primary_outputs],
                "cycle {cyc}"
            );
            sa = ra[cut_a.num_primary_outputs..].to_vec();
            sb = rb[cut_b.num_primary_outputs..].to_vec();
        }
    }

    fn eval_all(nl: &Netlist, inputs: &[bool]) -> Vec<bool> {
        let mut vals = vec![false; nl.num_nets as usize];
        for (j, &inp) in nl.inputs.iter().enumerate() {
            vals[inp.index()] = inputs[j];
        }
        for gi in topo_order(nl).unwrap() {
            let g = &nl.gates[gi];
            let ins: Vec<bool> = g.inputs.iter().map(|n| vals[n.index()]).collect();
            vals[g.output.index()] = g.kind.eval(&ins);
        }
        nl.outputs.iter().map(|o| vals[o.index()]).collect()
    }

    #[test]
    fn parses_external_style_blif() {
        // hand-written BLIF with don't-cares and a 0-cover
        let src = "
          # a comment
          .model ext
          .inputs a b c
          .outputs y z
          .names a b c y
          1-1 1
          01- 1
          .names a b z
          00 0
          .end";
        let nl = from_blif(src).unwrap();
        assert_eq!(nl.name, "ext");
        for v in 0..8u64 {
            let a = v & 1 == 1;
            let bb = v >> 1 & 1 == 1;
            let c = v >> 2 & 1 == 1;
            let y = (a && c) || (!a && bb);
            let z = !(!a && !bb); // 0-cover: function is 0 only on "00"
            let got = eval(&nl, v);
            assert_eq!(got & 1 == 1, y, "y at {v:03b}");
            assert_eq!(got >> 1 & 1 == 1, z, "z at {v:03b}");
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_blif(".model m\n.inputs a\n.outputs y\n.names a y\n1\n.end").is_err());
        assert!(from_blif(".model m\n.outputs y\n.end").is_err()); // y undefined
        assert!(from_blif(".model m\n.inputs a\n.outputs y\n.subckt foo x=a\n.end").is_err());
    }

    #[test]
    fn constant_covers() {
        let src = ".model k\n.inputs a\n.outputs one zero\n.names one\n1\n.names zero\n.end";
        let nl = from_blif(src).unwrap();
        for v in 0..2u64 {
            let got = eval(&nl, v);
            assert_eq!(got & 1, 1, "constant 1");
            assert_eq!(got >> 1 & 1, 0, "constant 0");
        }
    }
}
