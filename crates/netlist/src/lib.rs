//! # c2nn-netlist
//!
//! Gate-level netlist intermediate representation for the C2NN workspace —
//! the Rust reproduction of *"Neural Network Compiler for Parallel
//! High-Throughput Simulation of Digital Circuits"* (IPPS 2023).
//!
//! This crate plays the role that Yosys's internal RTLIL netlist plays in the
//! paper's pipeline: every frontend (the Verilog elaborator, the programmatic
//! circuit builders) produces a [`Netlist`], and every backend (the LUT
//! mapper, the reference simulator) consumes one.
//!
//! ## Layout
//!
//! * [`ir`] — the core types: [`Net`], [`Gate`], [`FlipFlop`], [`Netlist`],
//!   with structural validation.
//! * [`build`] — [`NetlistBuilder`]: incremental construction with structural
//!   hashing, constant folding, and truth-table synthesis.
//! * [`word`] — [`WordOps`]: multi-bit operators (adders, shifters, muxes).
//! * [`graph`] — DAG utilities: topological order, levelization, dead-code
//!   sweep, statistics, DOT export.
//! * [`seq`] — sequential transforms: clock unification and flip-flop
//!   cutting (paper §III-C), producing a [`CutCircuit`].
//!
//! ## Example
//!
//! ```
//! use c2nn_netlist::{NetlistBuilder, WordOps};
//!
//! let mut b = NetlistBuilder::new("adder4");
//! let a = b.input_word("a", 4);
//! let c = b.input_word("b", 4);
//! let sum = b.add_word(&a, &c);
//! b.output_word(&sum, "sum");
//! let netlist = b.finish().unwrap();
//! assert!(netlist.is_combinational());
//! ```

pub mod aig;
pub mod blif;
pub mod build;
pub mod graph;
pub mod ir;
pub mod seq;
pub mod word;

pub use aig::{to_aig, Aig, Lit};
pub use blif::{from_blif, to_blif, BlifError};
pub use build::NetlistBuilder;
pub use graph::{
    binarize, binarize_with, collapse_buffers, depth, fanout_counts, levelize, stats, sweep_dead,
    to_dot, topo_order, NetlistStats,
};
pub use ir::{Driver, FlipFlop, Gate, GateKind, Net, Netlist, NetlistError};
pub use seq::{cut_flipflops, prepare, unify_clocks, CutCircuit, SeqError};
pub use word::WordOps;
