//! DAG utilities over the combinational part of a [`Netlist`]: topological
//! ordering, levelization, fan-out computation, cone extraction, and
//! statistics. Flip-flop boundaries (`q` outputs) are treated as sources and
//! `d` inputs as sinks, so a sequential netlist's gate graph is still a DAG.

use crate::ir::{Driver, GateKind, Net, Netlist, NetlistError};
use std::collections::HashMap;

/// Topological order of gate indices (inputs before users).
///
/// Fails with [`NetlistError::CombinationalCycle`] if the combinational part
/// is cyclic.
pub fn topo_order(nl: &Netlist) -> Result<Vec<usize>, NetlistError> {
    // driver-gate lookup without full Driver vec (cheap, local)
    let mut gate_of_net: Vec<u32> = vec![u32::MAX; nl.num_nets as usize];
    for (gi, g) in nl.gates.iter().enumerate() {
        if g.output.index() < gate_of_net.len() {
            gate_of_net[g.output.index()] = gi as u32;
        }
    }
    let mut indeg: Vec<u32> = vec![0; nl.gates.len()];
    let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); nl.gates.len()];
    for (gi, g) in nl.gates.iter().enumerate() {
        for &inp in &g.inputs {
            let src = gate_of_net[inp.index()];
            if src != u32::MAX {
                indeg[gi] += 1;
                fanout[src as usize].push(gi as u32);
            }
        }
    }
    let mut order = Vec::with_capacity(nl.gates.len());
    let mut queue: Vec<u32> = (0..nl.gates.len() as u32)
        .filter(|&g| indeg[g as usize] == 0)
        .collect();
    while let Some(g) = queue.pop() {
        order.push(g as usize);
        for &succ in &fanout[g as usize] {
            indeg[succ as usize] -= 1;
            if indeg[succ as usize] == 0 {
                queue.push(succ);
            }
        }
    }
    if order.len() != nl.gates.len() {
        // find a gate still in the cycle for the error message
        let g = indeg.iter().position(|&d| d > 0).unwrap_or(0);
        return Err(NetlistError::CombinationalCycle(nl.gates[g].output));
    }
    Ok(order)
}

/// Per-net logic level: primary inputs, constants and flip-flop outputs are
/// level 0; a gate output is `1 + max(input levels)`.
pub fn levelize(nl: &Netlist) -> Result<Vec<u32>, NetlistError> {
    let order = topo_order(nl)?;
    let mut level = vec![0u32; nl.num_nets as usize];
    for gi in order {
        let g = &nl.gates[gi];
        let lvl = g.inputs.iter().map(|n| level[n.index()]).max().unwrap_or(0) + 1;
        level[g.output.index()] = lvl;
    }
    Ok(level)
}

/// Maximum logic level over all nets (circuit depth in gates).
pub fn depth(nl: &Netlist) -> Result<u32, NetlistError> {
    Ok(levelize(nl)?.into_iter().max().unwrap_or(0))
}

/// Number of combinational readers of each net (gate inputs only).
pub fn fanout_counts(nl: &Netlist) -> Vec<u32> {
    let mut counts = vec![0u32; nl.num_nets as usize];
    for g in &nl.gates {
        for &inp in &g.inputs {
            counts[inp.index()] += 1;
        }
    }
    for ff in &nl.flipflops {
        counts[ff.d.index()] += 1;
        if let Some(e) = ff.enable {
            counts[e.index()] += 1;
        }
        if let Some(r) = ff.reset {
            counts[r.index()] += 1;
        }
    }
    for &o in &nl.outputs {
        counts[o.index()] += 1;
    }
    counts
}

/// Remove gates whose outputs reach no primary output, flip-flop, or other
/// live gate (dead-code elimination), compacting net ids. Returns the new
/// netlist and the old-net → new-net mapping.
pub fn sweep_dead(nl: &Netlist) -> (Netlist, HashMap<Net, Net>) {
    let drivers = nl.drivers().expect("netlist must be valid before sweep");
    // Mark live nets backwards from outputs and flip-flop inputs.
    let mut live = vec![false; nl.num_nets as usize];
    let mut stack: Vec<Net> = Vec::new();
    let push = |stack: &mut Vec<Net>, live: &mut Vec<bool>, n: Net| {
        if !live[n.index()] {
            live[n.index()] = true;
            stack.push(n);
        }
    };
    for &o in &nl.outputs {
        push(&mut stack, &mut live, o);
    }
    for ff in &nl.flipflops {
        push(&mut stack, &mut live, ff.d);
        push(&mut stack, &mut live, ff.q);
        if let Some(e) = ff.enable {
            push(&mut stack, &mut live, e);
        }
        if let Some(r) = ff.reset {
            push(&mut stack, &mut live, r);
        }
    }
    // keep all primary inputs (port shape must be preserved)
    for &i in &nl.inputs {
        push(&mut stack, &mut live, i);
    }
    while let Some(n) = stack.pop() {
        if let Driver::Gate(gi) = drivers[n.index()] {
            for &inp in &nl.gates[gi].inputs {
                push(&mut stack, &mut live, inp);
            }
        }
    }
    // Renumber live nets densely.
    let mut map: HashMap<Net, Net> = HashMap::new();
    let mut next = 0u32;
    for idx in 0..nl.num_nets {
        if live[idx as usize] {
            map.insert(Net(idx), Net(next));
            next += 1;
        }
    }
    let remap = |n: Net| map[&n];
    let mut out = Netlist::new(nl.name.clone());
    out.num_nets = next;
    out.inputs = nl.inputs.iter().map(|&n| remap(n)).collect();
    out.outputs = nl.outputs.iter().map(|&n| remap(n)).collect();
    out.clocks = nl.clocks.clone();
    out.net_names = vec![None; next as usize];
    for idx in 0..nl.num_nets as usize {
        if live[idx] {
            out.net_names[map[&Net(idx as u32)].index()] = nl.net_names[idx].clone();
        }
    }
    for g in &nl.gates {
        if live[g.output.index()] {
            out.gates.push(crate::ir::Gate {
                kind: g.kind,
                inputs: g.inputs.iter().map(|&n| remap(n)).collect(),
                output: remap(g.output),
            });
        }
    }
    for ff in &nl.flipflops {
        let mut ff = ff.clone();
        ff.d = remap(ff.d);
        ff.q = remap(ff.q);
        ff.enable = ff.enable.map(remap);
        ff.reset = ff.reset.map(remap);
        out.flipflops.push(ff);
    }
    (out, map)
}

/// Decompose gates into a 2-bounded form: variadic AND/OR/XOR/NAND/NOR/XNOR
/// become balanced trees of 2-input gates; `Mux` is kept when `keep_mux`
/// (it is 3-bounded) or expanded into AND/OR/NOT otherwise. Net ids of
/// existing nets (in particular gate outputs) are preserved, so ports and
/// flip-flops are untouched. Technology mappers require a k-bounded network;
/// this provides the strongest (2-bounded) guarantee.
pub fn binarize(nl: &Netlist, keep_mux: bool) -> Netlist {
    binarize_with(nl, keep_mux, |_| false)
}

/// [`binarize`] with an exemption predicate: gates for which `skip` returns
/// true are copied unchanged (used by the wide-gate known-function pass,
/// which must keep wide ANDs/ORs intact through mapping).
pub fn binarize_with(
    nl: &Netlist,
    keep_mux: bool,
    skip: impl Fn(&crate::ir::Gate) -> bool,
) -> Netlist {
    let mut out = nl.clone();
    let mut gates = Vec::with_capacity(out.gates.len());
    let mut next_net = out.num_nets;
    let mut fresh = |names: &mut Vec<Option<String>>| {
        let n = Net(next_net);
        next_net += 1;
        names.push(None);
        n
    };
    for g in &out.gates {
        use GateKind::*;
        if skip(g) {
            gates.push(g.clone());
            continue;
        }
        let (tree_kind, invert) = match g.kind {
            And => (And, false),
            Or => (Or, false),
            Xor => (Xor, false),
            Nand => (And, true),
            Nor => (Or, true),
            Xnor => (Xor, true),
            Mux if !keep_mux => {
                // s ? b : a  =  (s AND b) OR (NOT s AND a)
                let (s, a, b) = (g.inputs[0], g.inputs[1], g.inputs[2]);
                let ns = fresh(&mut out.net_names);
                let t1 = fresh(&mut out.net_names);
                let t2 = fresh(&mut out.net_names);
                gates.push(crate::ir::Gate {
                    kind: Not,
                    inputs: vec![s],
                    output: ns,
                });
                gates.push(crate::ir::Gate {
                    kind: And,
                    inputs: vec![s, b],
                    output: t1,
                });
                gates.push(crate::ir::Gate {
                    kind: And,
                    inputs: vec![ns, a],
                    output: t2,
                });
                gates.push(crate::ir::Gate {
                    kind: Or,
                    inputs: vec![t1, t2],
                    output: g.output,
                });
                continue;
            }
            _ => {
                gates.push(g.clone());
                continue;
            }
        };
        if g.inputs.len() <= 2 && !invert {
            gates.push(g.clone());
            continue;
        }
        // balanced reduction tree over the inputs
        let mut layer: Vec<Net> = g.inputs.clone();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 1 {
                    next.push(pair[0]);
                    continue;
                }
                let last_pair = layer.len() == 2;
                let dst = if last_pair && !invert {
                    g.output
                } else {
                    fresh(&mut out.net_names)
                };
                gates.push(crate::ir::Gate {
                    kind: tree_kind,
                    inputs: vec![pair[0], pair[1]],
                    output: dst,
                });
                next.push(dst);
            }
            layer = next;
        }
        if invert {
            // single-input NAND/NOR/XNOR degenerate to NOT of the input
            gates.push(crate::ir::Gate {
                kind: Not,
                inputs: vec![layer[0]],
                output: g.output,
            });
        }
    }
    out.gates = gates;
    out.num_nets = next_net;
    out
}

/// Rewire every reader of a `Buf` gate's output to read the buffer's input
/// instead (following chains), leaving the buffers dead; then sweep them.
/// Primary inputs are never collapsed away. Debug names migrate to the
/// surviving net when it has none.
pub fn collapse_buffers(nl: &Netlist) -> Netlist {
    let drivers = nl.drivers().expect("netlist must be valid");
    // root[n] = the non-buffer source net feeding n through a buf chain
    let mut root: Vec<Net> = (0..nl.num_nets).map(Net).collect();
    fn find(root: &mut [Net], drivers: &[Driver], gates: &[crate::ir::Gate], n: Net) -> Net {
        if root[n.index()] != n {
            return root[n.index()];
        }
        if let Driver::Gate(gi) = drivers[n.index()] {
            if gates[gi].kind == GateKind::Buf {
                let r = find(root, drivers, gates, gates[gi].inputs[0]);
                root[n.index()] = r;
                return r;
            }
        }
        n
    }
    for i in 0..nl.num_nets {
        find(&mut root, &drivers, &nl.gates, Net(i));
    }
    let mut out = nl.clone();
    let remap = |n: Net| root[n.index()];
    for g in &mut out.gates {
        for inp in &mut g.inputs {
            *inp = remap(*inp);
        }
    }
    for ff in &mut out.flipflops {
        ff.d = remap(ff.d);
        ff.enable = ff.enable.map(remap);
        ff.reset = ff.reset.map(remap);
    }
    for o in &mut out.outputs {
        *o = remap(*o);
    }
    // migrate names from collapsed nets to their roots
    for (i, &r) in root.iter().enumerate() {
        if r.index() != i && out.net_names[r.index()].is_none() {
            out.net_names[r.index()] = nl.net_names[i].clone();
        }
    }
    sweep_dead(&out).0
}

/// Summary statistics of a netlist, used in reports and tests.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetlistStats {
    pub nets: usize,
    pub inputs: usize,
    pub outputs: usize,
    pub gates: usize,
    pub flipflops: usize,
    pub depth: u32,
    pub by_kind: Vec<(GateKind, usize)>,
}

/// Compute [`NetlistStats`].
pub fn stats(nl: &Netlist) -> NetlistStats {
    let mut by: HashMap<GateKind, usize> = HashMap::new();
    for g in &nl.gates {
        *by.entry(g.kind).or_insert(0) += 1;
    }
    let mut by_kind: Vec<(GateKind, usize)> = by.into_iter().collect();
    by_kind.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    NetlistStats {
        nets: nl.num_nets as usize,
        inputs: nl.inputs.len(),
        outputs: nl.outputs.len(),
        gates: nl.gates.len(),
        flipflops: nl.flipflops.len(),
        depth: depth(nl).unwrap_or(0),
        by_kind,
    }
}

/// Render the gate graph in Graphviz DOT format (debugging aid).
pub fn to_dot(nl: &Netlist) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", nl.name);
    let _ = writeln!(s, "  rankdir=LR;");
    for (i, &n) in nl.inputs.iter().enumerate() {
        let name = nl.net_name(n).unwrap_or("in");
        let _ = writeln!(s, "  i{i} [shape=triangle,label=\"{name}\"];");
    }
    for (gi, g) in nl.gates.iter().enumerate() {
        let _ = writeln!(s, "  g{gi} [shape=box,label=\"{:?}\"];", g.kind);
    }
    for (fi, _) in nl.flipflops.iter().enumerate() {
        let _ = writeln!(s, "  f{fi} [shape=box,style=filled,label=\"DFF\"];");
    }
    let drivers = match nl.drivers() {
        Ok(d) => d,
        Err(_) => return s + "}\n",
    };
    let src_name = |n: Net| -> String {
        match drivers[n.index()] {
            Driver::Input(i) => format!("i{i}"),
            Driver::Gate(g) => format!("g{g}"),
            Driver::FlipFlop(f) => format!("f{f}"),
            Driver::None => "undriven".into(),
        }
    };
    for (gi, g) in nl.gates.iter().enumerate() {
        for &inp in &g.inputs {
            let _ = writeln!(s, "  {} -> g{gi};", src_name(inp));
        }
    }
    for (fi, ff) in nl.flipflops.iter().enumerate() {
        let _ = writeln!(s, "  {} -> f{fi};", src_name(ff.d));
    }
    for (oi, &o) in nl.outputs.iter().enumerate() {
        let name = nl.net_name(o).unwrap_or("out");
        let _ = writeln!(s, "  o{oi} [shape=invtriangle,label=\"{name}\"];");
        let _ = writeln!(s, "  {} -> o{oi};", src_name(o));
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::NetlistBuilder;

    fn chain(n: usize) -> Netlist {
        let mut b = NetlistBuilder::new("chain");
        let mut x = b.input("x");
        let y = b.input("y");
        for _ in 0..n {
            x = b.xor2(x, y);
        }
        b.output(x, "o");
        b.finish().unwrap()
    }

    #[test]
    fn topo_order_respects_deps() {
        let nl = chain(10);
        let order = topo_order(&nl).unwrap();
        let mut pos = vec![0; nl.gates.len()];
        for (p, &g) in order.iter().enumerate() {
            pos[g] = p;
        }
        for (gi, g) in nl.gates.iter().enumerate() {
            for &inp in &g.inputs {
                for (gj, h) in nl.gates.iter().enumerate() {
                    if h.output == inp {
                        assert!(pos[gj] < pos[gi]);
                    }
                }
            }
        }
    }

    #[test]
    fn depth_of_chain() {
        assert_eq!(depth(&chain(7)).unwrap(), 7);
    }

    #[test]
    fn levelize_inputs_are_zero() {
        let nl = chain(3);
        let lv = levelize(&nl).unwrap();
        for &i in &nl.inputs {
            assert_eq!(lv[i.index()], 0);
        }
    }

    #[test]
    fn fanout_counts_shared_input() {
        let nl = chain(5);
        let counts = fanout_counts(&nl);
        // `y` feeds all 5 xors
        assert_eq!(counts[nl.inputs[1].index()], 5);
        // output net is read once (primary output)
        assert_eq!(counts[nl.outputs[0].index()], 1);
    }

    #[test]
    fn sweep_removes_dead_gates() {
        let mut b = NetlistBuilder::new("dead");
        let a = b.input("a");
        let bb = b.input("b");
        let live = b.and2(a, bb);
        let _dead = b.or2(a, bb);
        b.output(live, "o");
        let nl = b.finish().unwrap();
        assert_eq!(nl.gates.len(), 2);
        let (swept, _) = sweep_dead(&nl);
        assert_eq!(swept.gates.len(), 1);
        swept.validate().unwrap();
        assert_eq!(swept.inputs.len(), 2);
    }

    #[test]
    fn stats_counts_kinds() {
        let nl = chain(4);
        let st = stats(&nl);
        assert_eq!(st.gates, 4);
        assert_eq!(st.depth, 4);
        assert_eq!(st.by_kind, vec![(GateKind::Xor, 4)]);
    }

    #[test]
    fn dot_output_mentions_all_gates() {
        let nl = chain(3);
        let dot = to_dot(&nl);
        assert!(dot.contains("g0"));
        assert!(dot.contains("g2"));
        assert!(dot.starts_with("digraph"));
    }
}
