//! Word-level construction helpers layered on [`NetlistBuilder`].
//!
//! A *word* is simply a `Vec<Net>` with the least significant bit first.
//! These helpers synthesize the multi-bit operators (adders, comparators,
//! shifters, muxes) that both the Verilog elaborator and the hand-built
//! benchmark circuits need, keeping all bit-blasting logic in one place.

use crate::build::NetlistBuilder;
use crate::ir::Net;

/// Word-level operations. All functions treat words as unsigned, LSB-first.
pub trait WordOps {
    /// A constant word of the given width.
    fn const_word(&mut self, value: u64, width: usize) -> Vec<Net>;
    /// Bitwise NOT.
    fn not_word(&mut self, a: &[Net]) -> Vec<Net>;
    /// Bitwise AND (widths must match).
    fn and_word(&mut self, a: &[Net], b: &[Net]) -> Vec<Net>;
    /// Bitwise OR (widths must match).
    fn or_word(&mut self, a: &[Net], b: &[Net]) -> Vec<Net>;
    /// Bitwise XOR (widths must match).
    fn xor_word(&mut self, a: &[Net], b: &[Net]) -> Vec<Net>;
    /// Ripple-carry addition with carry-in; returns (sum, carry-out).
    fn adc(&mut self, a: &[Net], b: &[Net], cin: Net) -> (Vec<Net>, Net);
    /// Addition modulo 2^width.
    fn add_word(&mut self, a: &[Net], b: &[Net]) -> Vec<Net>;
    /// Subtraction modulo 2^width (a - b).
    fn sub_word(&mut self, a: &[Net], b: &[Net]) -> Vec<Net>;
    /// Increment by one modulo 2^width.
    fn inc_word(&mut self, a: &[Net]) -> Vec<Net>;
    /// Equality comparison, single-bit result.
    fn eq_word(&mut self, a: &[Net], b: &[Net]) -> Net;
    /// Equality against a constant.
    fn eq_const(&mut self, a: &[Net], value: u64) -> Net;
    /// Unsigned less-than `a < b`.
    fn lt_word(&mut self, a: &[Net], b: &[Net]) -> Net;
    /// Per-bit 2:1 mux: `s ? b : a`.
    fn mux_word(&mut self, s: Net, a: &[Net], b: &[Net]) -> Vec<Net>;
    /// Select one of `words` by one-hot select lines (ORs of ANDs).
    fn onehot_mux_word(&mut self, selects: &[Net], words: &[Vec<Net>]) -> Vec<Net>;
    /// Logical left shift by a constant, zero fill.
    fn shl_const(&mut self, a: &[Net], k: usize) -> Vec<Net>;
    /// Logical right shift by a constant, zero fill.
    fn shr_const(&mut self, a: &[Net], k: usize) -> Vec<Net>;
    /// Rotate right by a constant.
    fn rotr_const(&mut self, a: &[Net], k: usize) -> Vec<Net>;
    /// Barrel shifter: shift `a` right logically by variable amount `sh`.
    fn shr_var(&mut self, a: &[Net], sh: &[Net]) -> Vec<Net>;
    /// Barrel shifter: shift `a` left logically by variable amount `sh`.
    fn shl_var(&mut self, a: &[Net], sh: &[Net]) -> Vec<Net>;
    /// OR-reduce a word to one bit.
    fn reduce_or(&mut self, a: &[Net]) -> Net;
    /// AND-reduce a word to one bit.
    fn reduce_and(&mut self, a: &[Net]) -> Net;
    /// XOR-reduce a word to one bit (parity).
    fn reduce_xor(&mut self, a: &[Net]) -> Net;
    /// Register a whole word through D flip-flops; returns the q word.
    fn dff_word(&mut self, d: &[Net], clock: u32, init: u64) -> Vec<Net>;
    /// Register a word with enable and synchronous reset to `reset_value`.
    fn dff_word_full(
        &mut self,
        d: &[Net],
        clock: u32,
        enable: Option<Net>,
        reset: Option<Net>,
        reset_value: u64,
        init: u64,
    ) -> Vec<Net>;
    /// Zero-extend or truncate to `width`.
    fn resize_word(&mut self, a: &[Net], width: usize) -> Vec<Net>;
}

impl WordOps for NetlistBuilder {
    fn const_word(&mut self, value: u64, width: usize) -> Vec<Net> {
        (0..width)
            .map(|i| self.constant(i < 64 && value >> i & 1 == 1))
            .collect()
    }

    fn not_word(&mut self, a: &[Net]) -> Vec<Net> {
        a.iter().map(|&x| self.not(x)).collect()
    }

    fn and_word(&mut self, a: &[Net], b: &[Net]) -> Vec<Net> {
        assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(&x, &y)| self.and2(x, y)).collect()
    }

    fn or_word(&mut self, a: &[Net], b: &[Net]) -> Vec<Net> {
        assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(&x, &y)| self.or2(x, y)).collect()
    }

    fn xor_word(&mut self, a: &[Net], b: &[Net]) -> Vec<Net> {
        assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(&x, &y)| self.xor2(x, y)).collect()
    }

    fn adc(&mut self, a: &[Net], b: &[Net], cin: Net) -> (Vec<Net>, Net) {
        assert_eq!(a.len(), b.len());
        let mut carry = cin;
        let mut sum = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let p = self.xor2(x, y);
            sum.push(self.xor2(p, carry));
            // carry = (x & y) | (p & carry)  — full-adder majority
            let g = self.and2(x, y);
            let t = self.and2(p, carry);
            carry = self.or2(g, t);
        }
        (sum, carry)
    }

    fn add_word(&mut self, a: &[Net], b: &[Net]) -> Vec<Net> {
        let cin = self.zero();
        self.adc(a, b, cin).0
    }

    fn sub_word(&mut self, a: &[Net], b: &[Net]) -> Vec<Net> {
        let nb = self.not_word(b);
        let cin = self.one();
        self.adc(a, &nb, cin).0
    }

    fn inc_word(&mut self, a: &[Net]) -> Vec<Net> {
        let one = self.const_word(1, a.len());
        self.add_word(a, &one)
    }

    fn eq_word(&mut self, a: &[Net], b: &[Net]) -> Net {
        assert_eq!(a.len(), b.len());
        let bits: Vec<Net> = a.iter().zip(b).map(|(&x, &y)| self.xnor2(x, y)).collect();
        self.and_many(&bits)
    }

    fn eq_const(&mut self, a: &[Net], value: u64) -> Net {
        // a value wider than the word can never match
        if a.len() < 64 && value >> a.len() != 0 {
            return self.zero();
        }
        let bits: Vec<Net> = a
            .iter()
            .enumerate()
            .map(|(i, &x)| if value >> i & 1 == 1 { x } else { self.not(x) })
            .collect();
        self.and_many(&bits)
    }

    fn lt_word(&mut self, a: &[Net], b: &[Net]) -> Net {
        // a < b  ⇔  borrow out of (a - b)
        let nb = self.not_word(b);
        let cin = self.one();
        let (_, carry) = self.adc(a, &nb, cin);
        self.not(carry)
    }

    fn mux_word(&mut self, s: Net, a: &[Net], b: &[Net]) -> Vec<Net> {
        assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(&x, &y)| self.mux(s, x, y)).collect()
    }

    fn onehot_mux_word(&mut self, selects: &[Net], words: &[Vec<Net>]) -> Vec<Net> {
        assert_eq!(selects.len(), words.len());
        assert!(!words.is_empty());
        let width = words[0].len();
        (0..width)
            .map(|bit| {
                let terms: Vec<Net> = selects
                    .iter()
                    .zip(words)
                    .map(|(&s, w)| self.and2(s, w[bit]))
                    .collect();
                self.or_many(&terms)
            })
            .collect()
    }

    fn shl_const(&mut self, a: &[Net], k: usize) -> Vec<Net> {
        let zero = self.zero();
        let mut out = vec![zero; a.len()];
        if k < a.len() {
            out[k..].copy_from_slice(&a[..a.len() - k]);
        }
        out
    }

    fn shr_const(&mut self, a: &[Net], k: usize) -> Vec<Net> {
        let zero = self.zero();
        let mut out = vec![zero; a.len()];
        let n = a.len().saturating_sub(k);
        out[..n].copy_from_slice(&a[k..k + n]);
        out
    }

    fn rotr_const(&mut self, a: &[Net], k: usize) -> Vec<Net> {
        let n = a.len();
        let k = k % n;
        (0..n).map(|i| a[(i + k) % n]).collect()
    }

    fn shr_var(&mut self, a: &[Net], sh: &[Net]) -> Vec<Net> {
        let mut cur = a.to_vec();
        for (stage, &s) in sh.iter().enumerate() {
            let shifted = self.shr_const(&cur, 1 << stage);
            cur = self.mux_word(s, &cur, &shifted);
        }
        cur
    }

    fn shl_var(&mut self, a: &[Net], sh: &[Net]) -> Vec<Net> {
        let mut cur = a.to_vec();
        for (stage, &s) in sh.iter().enumerate() {
            let shifted = self.shl_const(&cur, 1 << stage);
            cur = self.mux_word(s, &cur, &shifted);
        }
        cur
    }

    fn reduce_or(&mut self, a: &[Net]) -> Net {
        self.or_many(a)
    }

    fn reduce_and(&mut self, a: &[Net]) -> Net {
        self.and_many(a)
    }

    fn reduce_xor(&mut self, a: &[Net]) -> Net {
        self.xor_many(a)
    }

    fn dff_word(&mut self, d: &[Net], clock: u32, init: u64) -> Vec<Net> {
        d.iter()
            .enumerate()
            .map(|(i, &bit)| self.dff(bit, clock, i < 64 && init >> i & 1 == 1))
            .collect()
    }

    fn dff_word_full(
        &mut self,
        d: &[Net],
        clock: u32,
        enable: Option<Net>,
        reset: Option<Net>,
        reset_value: u64,
        init: u64,
    ) -> Vec<Net> {
        d.iter()
            .enumerate()
            .map(|(i, &bit)| {
                self.dff_full(
                    bit,
                    clock,
                    enable,
                    reset,
                    i < 64 && reset_value >> i & 1 == 1,
                    i < 64 && init >> i & 1 == 1,
                )
            })
            .collect()
    }

    fn resize_word(&mut self, a: &[Net], width: usize) -> Vec<Net> {
        let mut out: Vec<Net> = a.iter().copied().take(width).collect();
        while out.len() < width {
            out.push(self.zero());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::topo_order;
    use crate::ir::Netlist;

    /// Evaluate a combinational netlist for one input assignment.
    fn eval(nl: &Netlist, inputs: u64) -> u64 {
        let mut vals = vec![false; nl.num_nets as usize];
        for (j, &inp) in nl.inputs.iter().enumerate() {
            vals[inp.index()] = inputs >> j & 1 == 1;
        }
        for gi in topo_order(nl).unwrap() {
            let g = &nl.gates[gi];
            let ins: Vec<bool> = g.inputs.iter().map(|n| vals[n.index()]).collect();
            vals[g.output.index()] = g.kind.eval(&ins);
        }
        nl.outputs
            .iter()
            .enumerate()
            .map(|(j, &o)| (vals[o.index()] as u64) << j)
            .sum()
    }

    fn binop_circuit(
        width: usize,
        f: impl FnOnce(&mut NetlistBuilder, &[Net], &[Net]) -> Vec<Net>,
    ) -> Netlist {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_word("a", width);
        let bb = b.input_word("b", width);
        let out = f(&mut b, &a, &bb);
        b.output_word(&out, "o");
        b.finish().unwrap()
    }

    #[test]
    fn adder_exhaustive_4bit() {
        let nl = binop_circuit(4, |b, a, bb| b.add_word(a, bb));
        for a in 0..16u64 {
            for c in 0..16u64 {
                assert_eq!(eval(&nl, a | c << 4), (a + c) & 0xf, "{a}+{c}");
            }
        }
    }

    #[test]
    fn subtractor_exhaustive_4bit() {
        let nl = binop_circuit(4, |b, a, bb| b.sub_word(a, bb));
        for a in 0..16u64 {
            for c in 0..16u64 {
                assert_eq!(eval(&nl, a | c << 4), a.wrapping_sub(c) & 0xf, "{a}-{c}");
            }
        }
    }

    #[test]
    fn less_than_exhaustive_4bit() {
        let nl = binop_circuit(4, |b, a, bb| vec![b.lt_word(a, bb)]);
        for a in 0..16u64 {
            for c in 0..16u64 {
                assert_eq!(eval(&nl, a | c << 4), (a < c) as u64, "{a}<{c}");
            }
        }
    }

    #[test]
    fn eq_word_and_eq_const() {
        let nl = binop_circuit(4, |b, a, bb| {
            let e = b.eq_word(a, bb);
            let k = b.eq_const(a, 9);
            vec![e, k]
        });
        for a in 0..16u64 {
            for c in 0..16u64 {
                let got = eval(&nl, a | c << 4);
                assert_eq!(got & 1, (a == c) as u64);
                assert_eq!(got >> 1 & 1, (a == 9) as u64);
            }
        }
    }

    #[test]
    fn barrel_shifters() {
        // 8-bit value, 3-bit shift amount
        let mut b = NetlistBuilder::new("sh");
        let a = b.input_word("a", 8);
        let sh = b.input_word("sh", 3);
        let r = b.shr_var(&a, &sh);
        let l = b.shl_var(&a, &sh);
        b.output_word(&r, "r");
        b.output_word(&l, "l");
        let nl = b.finish().unwrap();
        for v in [0u64, 1, 0x80, 0xa5, 0xff, 0x3c] {
            for s in 0..8u64 {
                let got = eval(&nl, v | s << 8);
                assert_eq!(got & 0xff, v >> s, "shr {v} by {s}");
                assert_eq!(got >> 8 & 0xff, (v << s) & 0xff, "shl {v} by {s}");
            }
        }
    }

    #[test]
    fn rotate_right() {
        let mut b = NetlistBuilder::new("rot");
        let a = b.input_word("a", 8);
        let r = b.rotr_const(&a, 3);
        b.output_word(&r, "r");
        let nl = b.finish().unwrap();
        for v in [1u64, 0x81, 0xf0] {
            assert_eq!(eval(&nl, v), (v >> 3 | v << 5) & 0xff);
        }
    }

    #[test]
    fn onehot_mux_selects() {
        let mut b = NetlistBuilder::new("oh");
        let s = b.input_word("s", 2);
        let w0 = b.const_word(0x3, 4);
        let w1 = b.const_word(0xc, 4);
        let out = b.onehot_mux_word(&s.clone(), &[w0, w1]);
        b.output_word(&out, "o");
        let nl = b.finish().unwrap();
        assert_eq!(eval(&nl, 0b01), 0x3);
        assert_eq!(eval(&nl, 0b10), 0xc);
        assert_eq!(eval(&nl, 0b00), 0);
    }

    #[test]
    fn resize_extends_and_truncates() {
        let mut b = NetlistBuilder::new("rz");
        let a = b.input_word("a", 4);
        let wide = b.resize_word(&a, 6);
        let narrow = b.resize_word(&a, 2);
        b.output_word(&wide, "w");
        b.output_word(&narrow, "n");
        let nl = b.finish().unwrap();
        let got = eval(&nl, 0b1011);
        assert_eq!(got & 0x3f, 0b1011);
        assert_eq!(got >> 6 & 0x3, 0b11);
    }

    #[test]
    fn reductions() {
        let mut b = NetlistBuilder::new("red");
        let a = b.input_word("a", 4);
        let o = b.reduce_or(&a);
        let an = b.reduce_and(&a);
        let x = b.reduce_xor(&a);
        b.output(o, "or");
        b.output(an, "and");
        b.output(x, "xor");
        let nl = b.finish().unwrap();
        for v in 0..16u64 {
            let got = eval(&nl, v);
            assert_eq!(got & 1, (v != 0) as u64);
            assert_eq!(got >> 1 & 1, (v == 15) as u64);
            assert_eq!(got >> 2 & 1, (v.count_ones() % 2) as u64);
        }
    }
}
