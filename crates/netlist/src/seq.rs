//! Sequential-to-combinational transforms (paper §III-C).
//!
//! * [`unify_clocks`] — lower clock-enables and synchronous resets into plain
//!   D flip-flops on a single global clock by inserting muxes ("clock
//!   unification ... at the cost of adding some logic gates").
//! * [`cut_flipflops`] — replace every flip-flop by a pseudo-input (its `q`)
//!   and a pseudo-output (its `d`), producing a purely combinational DAG
//!   plus the external state-feedback description ([`CutCircuit`]).

use crate::ir::{FlipFlop, Gate, Net, Netlist, NetlistError};

/// Errors from the sequential transforms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SeqError {
    /// The netlist uses more than one clock domain; multi-clock designs must
    /// be retimed onto a global clock before compilation.
    MultipleClocks(Vec<String>),
    /// Underlying structural problem.
    Netlist(NetlistError),
}

impl std::fmt::Display for SeqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeqError::MultipleClocks(c) => {
                write!(f, "multiple clock domains not supported: {c:?}")
            }
            SeqError::Netlist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SeqError {}

impl From<NetlistError> for SeqError {
    fn from(e: NetlistError) -> Self {
        SeqError::Netlist(e)
    }
}

/// Lower every flip-flop to a plain D flip-flop on one global clock.
///
/// * `enable` becomes `d' = en ? d : q` (hold path through a mux);
/// * synchronous `reset` becomes `d'' = rst ? reset_value : d'`.
///
/// Returns an equivalent netlist whose flip-flops all have
/// `enable == None && reset == None`. Fails if more than one clock domain is
/// present.
pub fn unify_clocks(nl: &Netlist) -> Result<Netlist, SeqError> {
    let used: Vec<u32> = {
        let mut u: Vec<u32> = nl.flipflops.iter().map(|f| f.clock).collect();
        u.sort_unstable();
        u.dedup();
        u
    };
    if used.len() > 1 {
        return Err(SeqError::MultipleClocks(
            used.iter()
                .map(|&c| nl.clocks[c as usize].clone())
                .collect(),
        ));
    }
    let mut out = nl.clone();
    let mut next_net = out.num_nets;
    let mut fresh = |names: &mut Vec<Option<String>>| {
        let n = Net(next_net);
        next_net += 1;
        names.push(None);
        n
    };
    let mut const_net: Option<(Net, bool)> = None; // (net, value) cache for reset constants
    let mut new_gates: Vec<Gate> = Vec::new();
    for ff in &mut out.flipflops {
        let mut d = ff.d;
        if let Some(en) = ff.enable.take() {
            let m = fresh(&mut out.net_names);
            // en ? d : q  — Mux inputs are [s, a, b] with s?b:a
            new_gates.push(Gate {
                kind: crate::ir::GateKind::Mux,
                inputs: vec![en, ff.q, d],
                output: m,
            });
            d = m;
        }
        if let Some(rst) = ff.reset.take() {
            let rv = match const_net {
                Some((n, v)) if v == ff.reset_value => n,
                _ => {
                    let n = fresh(&mut out.net_names);
                    new_gates.push(Gate {
                        kind: if ff.reset_value {
                            crate::ir::GateKind::Const1
                        } else {
                            crate::ir::GateKind::Const0
                        },
                        inputs: vec![],
                        output: n,
                    });
                    const_net = Some((n, ff.reset_value));
                    n
                }
            };
            let m = fresh(&mut out.net_names);
            new_gates.push(Gate {
                kind: crate::ir::GateKind::Mux,
                inputs: vec![rst, d, rv],
                output: m,
            });
            d = m;
        }
        ff.d = d;
    }
    out.gates.extend(new_gates);
    out.num_nets = next_net;
    out.validate()?;
    Ok(out)
}

/// A sequential circuit after flip-flop cutting: a purely combinational
/// netlist whose input vector is `[primary inputs ‖ state]` and whose output
/// vector is `[primary outputs ‖ next-state]`.
#[derive(Clone, Debug)]
pub struct CutCircuit {
    /// The combinational netlist (no flip-flops).
    pub comb: Netlist,
    /// Power-on value of each state bit, in pseudo-port order.
    pub state_init: Vec<bool>,
    /// Number of real (non-pseudo) primary inputs.
    pub num_primary_inputs: usize,
    /// Number of real (non-pseudo) primary outputs.
    pub num_primary_outputs: usize,
}

impl CutCircuit {
    /// Number of state bits (flip-flops cut).
    pub fn state_bits(&self) -> usize {
        self.state_init.len()
    }

    /// Total input width of the combinational function (primary + state).
    pub fn total_inputs(&self) -> usize {
        self.comb.inputs.len()
    }

    /// Total output width of the combinational function (primary + state).
    pub fn total_outputs(&self) -> usize {
        self.comb.outputs.len()
    }
}

/// Cut all flip-flops (paper's *pseudo-inputs/-outputs*). The input netlist
/// must already be clock-unified (plain D flip-flops only); call
/// [`unify_clocks`] first, or use [`prepare`] which does both.
pub fn cut_flipflops(nl: &Netlist) -> Result<CutCircuit, SeqError> {
    for (fi, ff) in nl.flipflops.iter().enumerate() {
        assert!(
            ff.enable.is_none() && ff.reset.is_none(),
            "flip-flop #{fi} not unified; run unify_clocks first"
        );
    }
    let mut comb = nl.clone();
    let ffs: Vec<FlipFlop> = std::mem::take(&mut comb.flipflops);
    let mut state_init = Vec::with_capacity(ffs.len());
    for ff in &ffs {
        comb.inputs.push(ff.q); // pseudo-input
        comb.outputs.push(ff.d); // pseudo-output
        state_init.push(ff.init);
    }
    comb.validate()?;
    Ok(CutCircuit {
        comb,
        state_init,
        num_primary_inputs: nl.inputs.len(),
        num_primary_outputs: nl.outputs.len(),
    })
}

/// Convenience: clock unification followed by flip-flop cutting.
pub fn prepare(nl: &Netlist) -> Result<CutCircuit, SeqError> {
    cut_flipflops(&unify_clocks(nl)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::NetlistBuilder;
    use crate::graph::topo_order;
    use crate::word::WordOps;

    /// Reference evaluation of a combinational netlist.
    fn eval_comb(nl: &Netlist, inputs: &[bool]) -> Vec<bool> {
        let mut vals = vec![false; nl.num_nets as usize];
        for (j, &inp) in nl.inputs.iter().enumerate() {
            vals[inp.index()] = inputs[j];
        }
        for gi in topo_order(nl).unwrap() {
            let g = &nl.gates[gi];
            let ins: Vec<bool> = g.inputs.iter().map(|n| vals[n.index()]).collect();
            vals[g.output.index()] = g.kind.eval(&ins);
        }
        nl.outputs.iter().map(|o| vals[o.index()]).collect()
    }

    /// Simulate a cut circuit for `cycles` steps, one input vector per cycle.
    fn run_cut(cut: &CutCircuit, stimuli: &[Vec<bool>]) -> Vec<Vec<bool>> {
        let mut state = cut.state_init.clone();
        let mut outs = Vec::new();
        for stim in stimuli {
            let mut full = stim.clone();
            full.extend_from_slice(&state);
            let o = eval_comb(&cut.comb, &full);
            outs.push(o[..cut.num_primary_outputs].to_vec());
            state = o[cut.num_primary_outputs..].to_vec();
        }
        outs
    }

    fn counter(width: usize, with_enable: bool) -> Netlist {
        let mut b = NetlistBuilder::new("ctr");
        let clk = b.clock("clk");
        let en = if with_enable {
            Some(b.input("en"))
        } else {
            None
        };
        // feedback registers: allocate q nets first via dff of placeholder
        // Build by fixed-point: q = dff(q + 1)
        // Easiest: create fresh nets for q, then wire d afterwards by
        // constructing the increment from q.
        // NetlistBuilder::dff takes d first, so build with two passes using
        // explicit fresh nets.
        let qs: Vec<Net> = (0..width)
            .map(|i| b.fresh(Some(&format!("q{i}"))))
            .collect();
        let inc = b.inc_word(&qs);
        for (i, (&q, &d)) in qs.iter().zip(&inc).enumerate() {
            // manual flip-flop since q was pre-allocated
            let _ = i;
            b.push_ff_raw(d, q, clk, en, None, false, false);
        }
        b.output_word(&qs, "q");
        b.finish().unwrap()
    }

    #[test]
    fn unify_is_noop_for_plain_ffs() {
        let nl = counter(4, false);
        let u = unify_clocks(&nl).unwrap();
        assert_eq!(u.gates.len(), nl.gates.len());
        assert_eq!(u.flipflops.len(), nl.flipflops.len());
    }

    #[test]
    fn unify_lowers_enables() {
        let nl = counter(4, true);
        let u = unify_clocks(&nl).unwrap();
        assert!(u.flipflops.iter().all(|f| f.enable.is_none()));
        // one mux per flip-flop added
        assert_eq!(u.gates.len(), nl.gates.len() + 4);
        u.validate().unwrap();
    }

    #[test]
    fn cut_counter_counts() {
        let nl = counter(4, false);
        let cut = prepare(&nl).unwrap();
        assert_eq!(cut.state_bits(), 4);
        assert_eq!(cut.num_primary_inputs, 0);
        let stimuli = vec![vec![]; 6];
        let outs = run_cut(&cut, &stimuli);
        // outputs show the *current* count: 0,1,2,3,4,5
        for (cycle, out) in outs.iter().enumerate() {
            let v: usize = out
                .iter()
                .enumerate()
                .map(|(i, &b)| (b as usize) << i)
                .sum();
            assert_eq!(v, cycle, "cycle {cycle}");
        }
    }

    #[test]
    fn cut_counter_with_enable_holds() {
        let nl = counter(4, true);
        let cut = prepare(&nl).unwrap();
        // enable pattern: 1,1,0,0,1
        let stimuli: Vec<Vec<bool>> = [true, true, false, false, true]
            .iter()
            .map(|&e| vec![e])
            .collect();
        let outs = run_cut(&cut, &stimuli);
        let vals: Vec<usize> = outs
            .iter()
            .map(|o| o.iter().enumerate().map(|(i, &b)| (b as usize) << i).sum())
            .collect();
        assert_eq!(vals, vec![0, 1, 2, 2, 2]);
    }

    #[test]
    fn unify_lowers_sync_reset() {
        let mut b = NetlistBuilder::new("r");
        let clk = b.clock("clk");
        let d = b.input("d");
        let rst = b.input("rst");
        let q = b.dff_full(d, clk, None, Some(rst), true, false);
        b.output(q, "q");
        let nl = b.finish().unwrap();
        let u = unify_clocks(&nl).unwrap();
        assert!(u.flipflops[0].reset.is_none());
        let cut = cut_flipflops(&u).unwrap();
        // rst=1 loads reset_value=1 regardless of d
        let outs = run_cut(
            &cut,
            &[vec![false, true], vec![false, false], vec![false, false]],
        );
        assert_eq!(outs[1], vec![true]); // value loaded by reset visible next cycle
        assert_eq!(outs[2], vec![false]); // then d=0 propagates
    }

    #[test]
    fn multiple_clocks_rejected() {
        let mut b = NetlistBuilder::new("mc");
        let c1 = b.clock("clk_a");
        let c2 = b.clock("clk_b");
        let d = b.input("d");
        let q1 = b.dff(d, c1, false);
        let q2 = b.dff(q1, c2, false);
        b.output(q2, "q");
        let nl = b.finish().unwrap();
        assert!(matches!(
            unify_clocks(&nl),
            Err(SeqError::MultipleClocks(_))
        ));
    }

    #[test]
    fn cut_requires_unified() {
        let nl = counter(2, true);
        let res = std::panic::catch_unwind(|| cut_flipflops(&nl));
        assert!(res.is_err());
    }
}
