//! Core gate-level intermediate representation.
//!
//! A [`Netlist`] is a flat (hierarchy-free) gate-level description of a
//! digital circuit: a set of binary *nets* (signals), each driven by exactly
//! one of a primary input, a logic gate, a flip-flop output, or a constant.
//! This is the common currency of the whole workspace — the Verilog
//! elaborator produces it, the LUT mapper consumes it, and the reference
//! simulator executes it.

use std::fmt;

/// A single-bit signal in a [`Netlist`], identified by a dense index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Net(pub u32);

impl Net {
    /// The dense index of this net.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The logic function computed by a [`Gate`].
///
/// `And`/`Or`/`Xor`/`Nand`/`Nor`/`Xnor` are variadic (≥1 input); `Not` and
/// `Buf` take exactly one input; `Mux` takes `[s, a, b]` and computes
/// `if s { b } else { a }`; `Const0`/`Const1` take no inputs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GateKind {
    Const0,
    Const1,
    Buf,
    Not,
    And,
    Or,
    Xor,
    Nand,
    Nor,
    Xnor,
    /// 2:1 multiplexer: inputs `[s, a, b]`, output `s ? b : a`.
    Mux,
}

impl GateKind {
    /// Evaluate the gate over plain booleans.
    pub fn eval(self, inputs: &[bool]) -> bool {
        match self {
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().fold(false, |a, &b| a ^ b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xnor => !inputs.iter().fold(false, |a, &b| a ^ b),
            GateKind::Mux => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
        }
    }

    /// Evaluate the gate bit-parallel over 64-wide words (one stimulus per
    /// bit lane). Used by the cone evaluator and the reference simulator's
    /// truth-table paths.
    pub fn eval_word(self, inputs: &[u64]) -> u64 {
        match self {
            GateKind::Const0 => 0,
            GateKind::Const1 => !0,
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().fold(!0u64, |a, &b| a & b),
            GateKind::Or => inputs.iter().fold(0u64, |a, &b| a | b),
            GateKind::Xor => inputs.iter().fold(0u64, |a, &b| a ^ b),
            GateKind::Nand => !inputs.iter().fold(!0u64, |a, &b| a & b),
            GateKind::Nor => !inputs.iter().fold(0u64, |a, &b| a | b),
            GateKind::Xnor => !inputs.iter().fold(0u64, |a, &b| a ^ b),
            GateKind::Mux => (inputs[0] & inputs[2]) | (!inputs[0] & inputs[1]),
        }
    }

    /// Number of inputs this kind requires, or `None` if variadic (≥1).
    pub fn arity(self) -> Option<usize> {
        match self {
            GateKind::Const0 | GateKind::Const1 => Some(0),
            GateKind::Buf | GateKind::Not => Some(1),
            GateKind::Mux => Some(3),
            _ => None,
        }
    }
}

/// A combinational logic gate: one output net, an ordered list of input nets.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Gate {
    pub kind: GateKind,
    pub inputs: Vec<Net>,
    pub output: Net,
}

/// A positive-edge D flip-flop, optionally with a clock-enable and a
/// synchronous reset. [`crate::seq::unify_clocks`] lowers enables and resets
/// into plain D flip-flops by inserting gates (the paper's *clock
/// unification* step).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FlipFlop {
    /// Data input, sampled on the rising clock edge.
    pub d: Net,
    /// Registered output.
    pub q: Net,
    /// Index into [`Netlist::clocks`].
    pub clock: u32,
    /// When present and low, the flip-flop holds its value.
    pub enable: Option<Net>,
    /// When present and high, the flip-flop loads `reset_value` instead of `d`.
    pub reset: Option<Net>,
    /// Value loaded on synchronous reset.
    pub reset_value: bool,
    /// Power-on value of `q`.
    pub init: bool,
}

/// What drives a given net.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Driver {
    /// Primary input with the given position in [`Netlist::inputs`].
    Input(usize),
    /// Output of `gates[idx]`.
    Gate(usize),
    /// `q` of `flipflops[idx]`.
    FlipFlop(usize),
    /// Nothing drives the net (an error for reachable nets).
    None,
}

/// Errors detected by [`Netlist::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NetlistError {
    /// A net is driven by more than one source.
    MultipleDrivers(Net),
    /// A net that is read (gate input, FF data, or primary output) has no driver.
    Undriven(Net),
    /// The combinational part contains a cycle through the given net.
    CombinationalCycle(Net),
    /// A gate has the wrong number of inputs for its kind.
    BadArity {
        gate: usize,
        kind: GateKind,
        got: usize,
    },
    /// A net index is out of range.
    NetOutOfRange(Net),
    /// A flip-flop references an unknown clock index.
    BadClock { ff: usize, clock: u32 },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::MultipleDrivers(n) => write!(f, "net {n:?} has multiple drivers"),
            NetlistError::Undriven(n) => write!(f, "net {n:?} is read but undriven"),
            NetlistError::CombinationalCycle(n) => {
                write!(f, "combinational cycle through net {n:?}")
            }
            NetlistError::BadArity { gate, kind, got } => {
                write!(f, "gate #{gate} of kind {kind:?} has {got} inputs")
            }
            NetlistError::NetOutOfRange(n) => write!(f, "net {n:?} out of range"),
            NetlistError::BadClock { ff, clock } => {
                write!(f, "flip-flop #{ff} references unknown clock {clock}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// A flat gate-level circuit.
///
/// Invariants (checked by [`Netlist::validate`]):
/// * every net has at most one driver;
/// * every net read by a gate, flip-flop, or primary output has a driver;
/// * the gate-to-gate dependency graph is acyclic (flip-flops break cycles).
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    /// Human-readable circuit name.
    pub name: String,
    /// Total number of nets; valid nets are `0..num_nets`.
    pub num_nets: u32,
    /// Primary inputs, in port order.
    pub inputs: Vec<Net>,
    /// Primary outputs, in port order.
    pub outputs: Vec<Net>,
    pub gates: Vec<Gate>,
    pub flipflops: Vec<FlipFlop>,
    /// Clock domain names; flip-flops reference these by index.
    pub clocks: Vec<String>,
    /// Optional debug names, indexed by net.
    pub net_names: Vec<Option<String>>,
}

impl Netlist {
    /// An empty netlist with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            ..Netlist::default()
        }
    }

    /// Number of logic gates plus flip-flops — the paper's "Gates" column.
    pub fn gate_count(&self) -> usize {
        self.gates.len() + self.flipflops.len()
    }

    /// True if the circuit has no flip-flops.
    pub fn is_combinational(&self) -> bool {
        self.flipflops.is_empty()
    }

    /// The debug name of a net, if any.
    pub fn net_name(&self, net: Net) -> Option<&str> {
        self.net_names.get(net.index()).and_then(|n| n.as_deref())
    }

    /// Compute the driver of every net.
    pub fn drivers(&self) -> Result<Vec<Driver>, NetlistError> {
        let mut drv = vec![Driver::None; self.num_nets as usize];
        let set = |d: &mut Vec<Driver>, net: Net, val: Driver| {
            if net.index() >= d.len() {
                return Err(NetlistError::NetOutOfRange(net));
            }
            if d[net.index()] != Driver::None {
                return Err(NetlistError::MultipleDrivers(net));
            }
            d[net.index()] = val;
            Ok(())
        };
        for (i, &n) in self.inputs.iter().enumerate() {
            set(&mut drv, n, Driver::Input(i))?;
        }
        for (i, g) in self.gates.iter().enumerate() {
            set(&mut drv, g.output, Driver::Gate(i))?;
        }
        for (i, ff) in self.flipflops.iter().enumerate() {
            set(&mut drv, ff.q, Driver::FlipFlop(i))?;
        }
        Ok(drv)
    }

    /// Check all structural invariants. Cheap enough to run after every
    /// construction; the rest of the workspace assumes a validated netlist.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let drv = self.drivers()?;
        let in_range = |n: Net| -> Result<(), NetlistError> {
            if n.index() < self.num_nets as usize {
                Ok(())
            } else {
                Err(NetlistError::NetOutOfRange(n))
            }
        };
        let driven = |n: Net| -> Result<(), NetlistError> {
            in_range(n)?;
            if drv[n.index()] == Driver::None {
                Err(NetlistError::Undriven(n))
            } else {
                Ok(())
            }
        };
        for (gi, g) in self.gates.iter().enumerate() {
            if let Some(a) = g.kind.arity() {
                if g.inputs.len() != a {
                    return Err(NetlistError::BadArity {
                        gate: gi,
                        kind: g.kind,
                        got: g.inputs.len(),
                    });
                }
            } else if g.inputs.is_empty() {
                return Err(NetlistError::BadArity {
                    gate: gi,
                    kind: g.kind,
                    got: 0,
                });
            }
            for &n in &g.inputs {
                driven(n)?;
            }
            in_range(g.output)?;
        }
        for (fi, ff) in self.flipflops.iter().enumerate() {
            driven(ff.d)?;
            in_range(ff.q)?;
            if let Some(e) = ff.enable {
                driven(e)?;
            }
            if let Some(r) = ff.reset {
                driven(r)?;
            }
            if ff.clock as usize >= self.clocks.len() {
                return Err(NetlistError::BadClock {
                    ff: fi,
                    clock: ff.clock,
                });
            }
        }
        for &n in &self.outputs {
            driven(n)?;
        }
        // Acyclicity of the combinational part: Kahn's algorithm over gates.
        crate::graph::topo_order(self).map(|_| ())
    }

    /// Total number of gate input pins — a proxy for wiring complexity.
    pub fn pin_count(&self) -> usize {
        self.gates.iter().map(|g| g.inputs.len()).sum::<usize>() + self.flipflops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        // c = a AND b
        let mut nl = Netlist::new("tiny");
        nl.num_nets = 3;
        nl.inputs = vec![Net(0), Net(1)];
        nl.outputs = vec![Net(2)];
        nl.gates.push(Gate {
            kind: GateKind::And,
            inputs: vec![Net(0), Net(1)],
            output: Net(2),
        });
        nl.net_names = vec![Some("a".into()), Some("b".into()), Some("c".into())];
        nl
    }

    #[test]
    fn eval_matches_truth_tables() {
        use GateKind::*;
        for (kind, table) in [
            (And, [false, false, false, true]),
            (Or, [false, true, true, true]),
            (Xor, [false, true, true, false]),
            (Nand, [true, true, true, false]),
            (Nor, [true, false, false, false]),
            (Xnor, [true, false, false, true]),
        ] {
            for (i, &want) in table.iter().enumerate() {
                let a = i & 1 != 0;
                let b = i & 2 != 0;
                assert_eq!(kind.eval(&[a, b]), want, "{kind:?} on {a},{b}");
            }
        }
        assert!(!Not.eval(&[true]));
        assert!(Not.eval(&[false]));
        assert!(Buf.eval(&[true]));
        assert!(Const1.eval(&[]));
        assert!(!Const0.eval(&[]));
        // Mux: [s, a, b] -> s ? b : a
        assert!(!Mux.eval(&[false, false, true]));
        assert!(Mux.eval(&[true, false, true]));
    }

    #[test]
    fn eval_word_agrees_with_eval() {
        use GateKind::*;
        for kind in [And, Or, Xor, Nand, Nor, Xnor] {
            for i in 0..8usize {
                let bits: Vec<bool> = (0..3).map(|j| i & (1 << j) != 0).collect();
                let words: Vec<u64> = bits.iter().map(|&b| if b { !0 } else { 0 }).collect();
                let scalar = kind.eval(&bits);
                let word = kind.eval_word(&words);
                assert_eq!(word, if scalar { !0 } else { 0 }, "{kind:?} {bits:?}");
            }
        }
        assert_eq!(
            Mux.eval_word(&[0b01, 0b10, 0b01]),
            0b01 & 0b01 | !0b01 & 0b10
        );
    }

    #[test]
    fn validate_ok() {
        tiny().validate().unwrap();
    }

    #[test]
    fn validate_catches_multiple_drivers() {
        let mut nl = tiny();
        nl.gates.push(Gate {
            kind: GateKind::Or,
            inputs: vec![Net(0), Net(1)],
            output: Net(2),
        });
        assert_eq!(
            nl.validate().unwrap_err(),
            NetlistError::MultipleDrivers(Net(2))
        );
    }

    #[test]
    fn validate_catches_undriven() {
        let mut nl = tiny();
        nl.num_nets = 4;
        nl.net_names.push(None);
        nl.gates[0].inputs[1] = Net(3);
        assert_eq!(nl.validate().unwrap_err(), NetlistError::Undriven(Net(3)));
    }

    #[test]
    fn validate_catches_cycle() {
        let mut nl = Netlist::new("cyc");
        nl.num_nets = 3;
        nl.inputs = vec![Net(0)];
        nl.outputs = vec![Net(2)];
        nl.net_names = vec![None, None, None];
        nl.gates.push(Gate {
            kind: GateKind::And,
            inputs: vec![Net(0), Net(2)],
            output: Net(1),
        });
        nl.gates.push(Gate {
            kind: GateKind::Buf,
            inputs: vec![Net(1)],
            output: Net(2),
        });
        assert!(matches!(
            nl.validate().unwrap_err(),
            NetlistError::CombinationalCycle(_)
        ));
    }

    #[test]
    fn validate_catches_bad_arity() {
        let mut nl = tiny();
        nl.gates[0].kind = GateKind::Not;
        assert!(matches!(
            nl.validate().unwrap_err(),
            NetlistError::BadArity { .. }
        ));
    }

    #[test]
    fn gate_count_includes_flipflops() {
        let mut nl = tiny();
        nl.num_nets = 4;
        nl.net_names.push(None);
        nl.clocks.push("clk".into());
        nl.flipflops.push(FlipFlop {
            d: Net(2),
            q: Net(3),
            clock: 0,
            enable: None,
            reset: None,
            reset_value: false,
            init: false,
        });
        assert_eq!(nl.gate_count(), 2);
        nl.validate().unwrap();
    }
}
