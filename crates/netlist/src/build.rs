//! Ergonomic construction of netlists.
//!
//! [`NetlistBuilder`] hands out fresh [`Net`]s and records gates; structural
//! hashing folds duplicate gates and constants so programmatically generated
//! circuits stay lean. The builder is the backend of both the Verilog
//! elaborator and the hand-built benchmark circuits.

use crate::ir::{FlipFlop, Gate, GateKind, Net, Netlist, NetlistError};
use std::collections::HashMap;

/// Incremental netlist constructor with structural hashing.
pub struct NetlistBuilder {
    nl: Netlist,
    /// structural hash: (kind, inputs) -> existing output net
    strash: HashMap<(GateKind, Vec<Net>), Net>,
    const0: Option<Net>,
    const1: Option<Net>,
}

impl NetlistBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            nl: Netlist::new(name),
            strash: HashMap::new(),
            const0: None,
            const1: None,
        }
    }

    /// Allocate a fresh, undriven net.
    pub fn fresh(&mut self, name: Option<&str>) -> Net {
        let n = Net(self.nl.num_nets);
        self.nl.num_nets += 1;
        self.nl.net_names.push(name.map(|s| s.to_string()));
        n
    }

    /// Declare a primary input.
    pub fn input(&mut self, name: &str) -> Net {
        let n = self.fresh(Some(name));
        self.nl.inputs.push(n);
        n
    }

    /// Declare `width` primary inputs named `name[0..width]`, LSB first.
    pub fn input_word(&mut self, name: &str, width: usize) -> Vec<Net> {
        (0..width)
            .map(|i| self.input(&format!("{name}[{i}]")))
            .collect()
    }

    /// Declare a primary output driven by `net`.
    pub fn output(&mut self, net: Net, name: &str) {
        if self.nl.net_names[net.index()].is_none() {
            self.nl.net_names[net.index()] = Some(name.to_string());
        }
        self.nl.outputs.push(net);
    }

    /// Declare the nets of `word` as primary outputs, LSB first.
    pub fn output_word(&mut self, word: &[Net], name: &str) {
        for (i, &n) in word.iter().enumerate() {
            self.output(n, &format!("{name}[{i}]"));
        }
    }

    /// Register (or fetch) a clock domain by name.
    pub fn clock(&mut self, name: &str) -> u32 {
        if let Some(i) = self.nl.clocks.iter().position(|c| c == name) {
            return i as u32;
        }
        self.nl.clocks.push(name.to_string());
        (self.nl.clocks.len() - 1) as u32
    }

    /// Emit a gate, reusing an existing structurally identical one.
    pub fn gate(&mut self, kind: GateKind, inputs: Vec<Net>) -> Net {
        // Canonicalize commutative gates so strashing catches permutations.
        let mut inputs = inputs;
        match kind {
            GateKind::And
            | GateKind::Or
            | GateKind::Xor
            | GateKind::Nand
            | GateKind::Nor
            | GateKind::Xnor => inputs.sort_unstable(),
            _ => {}
        }
        if let Some(simplified) = self.try_simplify(kind, &inputs) {
            return simplified;
        }
        if let Some(&out) = self.strash.get(&(kind, inputs.clone())) {
            return out;
        }
        let out = self.fresh(None);
        self.strash.insert((kind, inputs.clone()), out);
        self.nl.gates.push(Gate {
            kind,
            inputs,
            output: out,
        });
        out
    }

    /// Local constant folding / idempotence rules applied before emitting.
    fn try_simplify(&mut self, kind: GateKind, inputs: &[Net]) -> Option<Net> {
        let c0 = self.const0;
        let c1 = self.const1;
        let is0 = |n: Net| Some(n) == c0;
        let is1 = |n: Net| Some(n) == c1;
        match kind {
            GateKind::Buf => Some(inputs[0]),
            GateKind::And => {
                if inputs.iter().any(|&n| is0(n)) {
                    return Some(self.zero());
                }
                let live: Vec<Net> = inputs.iter().copied().filter(|&n| !is1(n)).collect();
                match live.len() {
                    0 => Some(self.one()),
                    1 => Some(live[0]),
                    _ if live.len() < inputs.len() => Some(self.gate(GateKind::And, live)),
                    _ => None,
                }
            }
            GateKind::Or => {
                if inputs.iter().any(|&n| is1(n)) {
                    return Some(self.one());
                }
                let live: Vec<Net> = inputs.iter().copied().filter(|&n| !is0(n)).collect();
                match live.len() {
                    0 => Some(self.zero()),
                    1 => Some(live[0]),
                    _ if live.len() < inputs.len() => Some(self.gate(GateKind::Or, live)),
                    _ => None,
                }
            }
            GateKind::Xor => {
                let live: Vec<Net> = inputs.iter().copied().filter(|&n| !is0(n)).collect();
                if live.len() < inputs.len() {
                    return Some(match live.len() {
                        0 => self.zero(),
                        1 => live[0],
                        _ => self.gate(GateKind::Xor, live),
                    });
                }
                None
            }
            GateKind::Not => {
                if is0(inputs[0]) {
                    Some(self.one())
                } else if is1(inputs[0]) {
                    Some(self.zero())
                } else {
                    None
                }
            }
            GateKind::Mux => {
                let (s, a, b) = (inputs[0], inputs[1], inputs[2]);
                if is0(s) {
                    Some(a)
                } else if is1(s) {
                    Some(b)
                } else if a == b {
                    Some(a)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// The constant-0 net (created on first use).
    pub fn zero(&mut self) -> Net {
        if let Some(n) = self.const0 {
            return n;
        }
        let n = self.fresh(Some("const0"));
        self.nl.gates.push(Gate {
            kind: GateKind::Const0,
            inputs: vec![],
            output: n,
        });
        self.const0 = Some(n);
        n
    }

    /// The constant-1 net (created on first use).
    pub fn one(&mut self) -> Net {
        if let Some(n) = self.const1 {
            return n;
        }
        let n = self.fresh(Some("const1"));
        self.nl.gates.push(Gate {
            kind: GateKind::Const1,
            inputs: vec![],
            output: n,
        });
        self.const1 = Some(n);
        n
    }

    /// A constant 0 or 1 net.
    pub fn constant(&mut self, value: bool) -> Net {
        if value {
            self.one()
        } else {
            self.zero()
        }
    }

    pub fn not(&mut self, a: Net) -> Net {
        self.gate(GateKind::Not, vec![a])
    }
    pub fn and2(&mut self, a: Net, b: Net) -> Net {
        self.gate(GateKind::And, vec![a, b])
    }
    pub fn or2(&mut self, a: Net, b: Net) -> Net {
        self.gate(GateKind::Or, vec![a, b])
    }
    pub fn xor2(&mut self, a: Net, b: Net) -> Net {
        self.gate(GateKind::Xor, vec![a, b])
    }
    pub fn nand2(&mut self, a: Net, b: Net) -> Net {
        self.gate(GateKind::Nand, vec![a, b])
    }
    pub fn nor2(&mut self, a: Net, b: Net) -> Net {
        self.gate(GateKind::Nor, vec![a, b])
    }
    pub fn xnor2(&mut self, a: Net, b: Net) -> Net {
        self.gate(GateKind::Xnor, vec![a, b])
    }

    /// `s ? b : a`.
    pub fn mux(&mut self, s: Net, a: Net, b: Net) -> Net {
        self.gate(GateKind::Mux, vec![s, a, b])
    }

    /// Variadic AND (empty input = constant 1).
    pub fn and_many(&mut self, xs: &[Net]) -> Net {
        match xs.len() {
            0 => self.one(),
            1 => xs[0],
            _ => self.gate(GateKind::And, xs.to_vec()),
        }
    }

    /// Variadic OR (empty input = constant 0).
    pub fn or_many(&mut self, xs: &[Net]) -> Net {
        match xs.len() {
            0 => self.zero(),
            1 => xs[0],
            _ => self.gate(GateKind::Or, xs.to_vec()),
        }
    }

    /// Variadic XOR (empty input = constant 0).
    pub fn xor_many(&mut self, xs: &[Net]) -> Net {
        match xs.len() {
            0 => self.zero(),
            1 => xs[0],
            _ => self.gate(GateKind::Xor, xs.to_vec()),
        }
    }

    /// A positive-edge D flip-flop; returns `q`.
    pub fn dff(&mut self, d: Net, clock: u32, init: bool) -> Net {
        let q = self.fresh(None);
        self.nl.flipflops.push(FlipFlop {
            d,
            q,
            clock,
            enable: None,
            reset: None,
            reset_value: false,
            init,
        });
        q
    }

    /// A D flip-flop with clock-enable and synchronous reset; returns `q`.
    pub fn dff_full(
        &mut self,
        d: Net,
        clock: u32,
        enable: Option<Net>,
        reset: Option<Net>,
        reset_value: bool,
        init: bool,
    ) -> Net {
        let q = self.fresh(None);
        self.nl.flipflops.push(FlipFlop {
            d,
            q,
            clock,
            enable,
            reset,
            reset_value,
            init,
        });
        q
    }

    /// Drive a pre-allocated net `dst` from `src` with a raw buffer gate.
    /// Unlike [`NetlistBuilder::gate`] (which would fold the buffer away and
    /// return `src`), this really emits a `Buf`, because `dst` already exists
    /// as a placeholder — the Verilog elaborator resolves forward references
    /// this way. [`crate::graph::collapse_buffers`] removes them afterwards.
    pub fn connect(&mut self, src: Net, dst: Net) {
        self.nl.gates.push(Gate {
            kind: GateKind::Buf,
            inputs: vec![src],
            output: dst,
        });
    }

    /// Register a flip-flop whose `q` net was pre-allocated with
    /// [`NetlistBuilder::fresh`]. This is how feedback loops are built:
    /// allocate `q`, derive next-state logic from it, then connect `d`.
    #[allow(clippy::too_many_arguments)]
    pub fn push_ff_raw(
        &mut self,
        d: Net,
        q: Net,
        clock: u32,
        enable: Option<Net>,
        reset: Option<Net>,
        reset_value: bool,
        init: bool,
    ) {
        self.nl.flipflops.push(FlipFlop {
            d,
            q,
            clock,
            enable,
            reset,
            reset_value,
            init,
        });
    }

    /// Allocate `width` fresh nets named `name[i]` (for feedback state words).
    pub fn fresh_word(&mut self, name: &str, width: usize) -> Vec<Net> {
        (0..width)
            .map(|i| self.fresh(Some(&format!("{name}[{i}]"))))
            .collect()
    }

    /// Connect a pre-allocated state word `q` to next-state word `d` through
    /// flip-flops (one per bit), with optional enable/reset shared by all bits.
    #[allow(clippy::too_many_arguments)]
    pub fn connect_ff_word(
        &mut self,
        d: &[Net],
        q: &[Net],
        clock: u32,
        enable: Option<Net>,
        reset: Option<Net>,
        reset_value: u64,
        init: u64,
    ) {
        assert_eq!(d.len(), q.len());
        for (i, (&di, &qi)) in d.iter().zip(q).enumerate() {
            // bits beyond 64 are zero (words can be wider than u64 constants)
            self.push_ff_raw(
                di,
                qi,
                clock,
                enable,
                reset,
                i < 64 && reset_value >> i & 1 == 1,
                i < 64 && init >> i & 1 == 1,
            );
        }
    }

    /// Synthesize an arbitrary truth table over `inputs` as a mux (Shannon)
    /// tree. `bits` is the packed table: row `i` (input `j` = bit `j` of `i`)
    /// is bit `i % 64` of `bits[i / 64]`. This is how S-boxes and other
    /// table-defined functions enter the gate level.
    pub fn synth_truth_table(&mut self, inputs: &[Net], bits: &[u64]) -> Net {
        let n = inputs.len();
        assert!(n <= 24, "truth table too wide: {n}");
        let rows = 1usize << n;
        assert!(
            bits.len() * 64 >= rows,
            "table has {} bits, need {rows}",
            bits.len() * 64
        );
        let get = |i: usize| bits[i / 64] >> (i % 64) & 1 == 1;
        self.shannon(inputs, 0, rows, &get)
    }

    fn shannon(
        &mut self,
        inputs: &[Net],
        base: usize,
        len: usize,
        get: &dyn Fn(usize) -> bool,
    ) -> Net {
        if len == 1 {
            return self.constant(get(base));
        }
        // Split on the highest remaining variable: rows [base, base+len/2)
        // have it 0, rows [base+len/2, base+len) have it 1.
        let half = len / 2;
        let var = inputs[len.trailing_zeros() as usize - 1];
        // Constant-subtree shortcut keeps mux trees small for sparse tables.
        let all_same = |b: usize| -> Option<bool> {
            let v = get(b);
            for i in 1..half {
                if get(b + i) != v {
                    return None;
                }
            }
            Some(v)
        };
        let lo = match all_same(base) {
            Some(v) => self.constant(v),
            None => self.shannon(inputs, base, half, get),
        };
        let hi = match all_same(base + half) {
            Some(v) => self.constant(v),
            None => self.shannon(inputs, base + half, half, get),
        };
        self.mux(var, lo, hi)
    }

    /// Name an existing net for debugging.
    pub fn name_net(&mut self, net: Net, name: &str) {
        self.nl.net_names[net.index()] = Some(name.to_string());
    }

    /// Number of gates emitted so far.
    pub fn gate_count(&self) -> usize {
        self.nl.gates.len()
    }

    /// Access the netlist under construction.
    pub fn netlist(&self) -> &Netlist {
        &self.nl
    }

    /// Validate and return the finished netlist.
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        self.nl.validate()?;
        Ok(self.nl)
    }

    /// Return the netlist without validating (for intentionally partial
    /// construction in tests).
    pub fn finish_unchecked(self) -> Netlist {
        self.nl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strash_dedups_gates() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let g1 = b.and2(x, y);
        let g2 = b.and2(y, x); // commuted — must fold
        assert_eq!(g1, g2);
        assert_eq!(b.gate_count(), 1);
    }

    #[test]
    fn constant_folding() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x");
        let one = b.one();
        let zero = b.zero();
        assert_eq!(b.and2(x, one), x);
        let z = b.and2(x, zero);
        assert_eq!(z, zero);
        assert_eq!(b.or2(x, zero), x);
        let o = b.or2(x, one);
        assert_eq!(o, one);
        assert_eq!(b.xor2(x, zero), x);
        let n0 = b.not(zero);
        assert_eq!(n0, one);
    }

    #[test]
    fn mux_simplifications() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let zero = b.zero();
        let one = b.one();
        assert_eq!(b.mux(zero, x, y), x);
        assert_eq!(b.mux(one, x, y), y);
        let s = b.input("s");
        assert_eq!(b.mux(s, x, x), x);
    }

    #[test]
    fn truth_table_synthesis_is_correct() {
        // 3-input majority: table index i, bit set iff popcount(i) >= 2
        let mut bits = [0u64; 1];
        for i in 0..8u64 {
            if i.count_ones() >= 2 {
                bits[0] |= 1 << i;
            }
        }
        let mut b = NetlistBuilder::new("maj");
        let ins = b.input_word("x", 3);
        let out = b.synth_truth_table(&ins, &bits);
        b.output(out, "maj");
        let nl = b.finish().unwrap();
        // evaluate by brute force with a tiny interpreter
        for i in 0..8usize {
            let mut vals = vec![false; nl.num_nets as usize];
            for (j, &inp) in nl.inputs.iter().enumerate() {
                vals[inp.index()] = i >> j & 1 == 1;
            }
            let order = crate::graph::topo_order(&nl).unwrap();
            for gi in order {
                let g = &nl.gates[gi];
                let ins: Vec<bool> = g.inputs.iter().map(|n| vals[n.index()]).collect();
                vals[g.output.index()] = g.kind.eval(&ins);
            }
            assert_eq!(
                vals[nl.outputs[0].index()],
                (i as u64).count_ones() >= 2,
                "row {i}"
            );
        }
    }

    #[test]
    fn dff_roundtrip_structure() {
        let mut b = NetlistBuilder::new("reg");
        let clk = b.clock("clk");
        let d = b.input("d");
        let q = b.dff(d, clk, false);
        b.output(q, "q");
        let nl = b.finish().unwrap();
        assert_eq!(nl.flipflops.len(), 1);
        assert!(!nl.is_combinational());
    }

    #[test]
    fn word_io_ports_are_ordered() {
        let mut b = NetlistBuilder::new("w");
        let w = b.input_word("a", 4);
        b.output_word(&w, "o");
        let nl = b.finish().unwrap();
        assert_eq!(nl.inputs.len(), 4);
        assert_eq!(nl.outputs.len(), 4);
        assert_eq!(nl.net_name(nl.inputs[2]), Some("a[2]"));
    }
}
