//! Interchange demo: round-trip a benchmark circuit through BLIF (the
//! format Yosys/ABC speak), recompile the imported netlist to a neural
//! network, and prove all three artifacts — original circuit, BLIF
//! re-import, and compiled network — are bit-identical.
//!
//! ```sh
//! cargo run --release --example blif_interop
//! ```

use c2nn::netlist::{from_blif, to_blif};
use c2nn::prelude::*;

fn main() {
    // take the SPI master (built from Verilog source internally)
    let original = c2nn::circuits::spi();
    println!(
        "SPI master: {} gates, {} flip-flops",
        original.gates.len(),
        original.flipflops.len()
    );

    // export → BLIF text
    let blif = to_blif(&original);
    println!(
        "exported BLIF: {} lines ({} .names blocks, {} .latch lines)",
        blif.lines().count(),
        blif.matches(".names").count(),
        blif.matches(".latch").count()
    );

    // import back and compile the re-import
    let reimported = from_blif(&blif).expect("our own BLIF must parse");
    let nn = compile(&reimported, CompileOptions::with_l(5)).expect("compile re-import");
    println!(
        "re-imported and compiled at L=5: {} layers, {} connections",
        nn.num_layers(),
        nn.connections()
    );

    // drive all three in lockstep with random stimuli
    let mut sim_orig = CycleSim::new(&original).unwrap();
    let mut sim_back = CycleSim::new(&reimported).unwrap();
    let mut sim_nn = Simulator::new(&nn, 1, Device::Serial);
    let mut seed = 0xb1e5u64;
    let n_in = original.inputs.len();
    for cycle in 0..200 {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let stim: Vec<bool> = (0..n_in).map(|j| seed >> (13 + j) & 1 == 1).collect();
        let a = sim_orig.step(&stim);
        let b = sim_back.step(&stim);
        let c = sim_nn
            .step(&Dense::<f32>::from_lanes(std::slice::from_ref(&stim)))
            .to_lanes()
            .remove(0);
        assert_eq!(a, b, "BLIF round-trip diverged at cycle {cycle}");
        assert_eq!(a, c, "compiled NN diverged at cycle {cycle}");
    }
    println!("200 cycles: original ≡ BLIF re-import ≡ compiled network ✔");
}
