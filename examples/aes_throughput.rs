//! Batched AES simulation: encrypt many blocks at once through the
//! compiled network (the paper's stimulus parallelism), verify every
//! ciphertext against the software reference, and report gates·cycles/s.
//!
//! ```sh
//! cargo run --release --example aes_throughput [L] [BATCH]
//! ```

use c2nn::circuits::aes::{self, reference};
use c2nn::prelude::*;
use std::time::Instant;

fn pack_bytes(bytes: &[u8]) -> Vec<bool> {
    bytes
        .iter()
        .flat_map(|&by| (0..8).map(move |k| by >> k & 1 == 1))
        .collect()
}

fn unpack_bytes(bits: &[bool]) -> Vec<u8> {
    bits.chunks(8)
        .map(|c| c.iter().enumerate().map(|(k, &b)| (b as u8) << k).sum())
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let l: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let batch: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(32);

    let netlist = aes::aes128();
    println!("AES-128 core: {} gates", netlist.gate_count());
    let t0 = Instant::now();
    let nn = compile(&netlist, CompileOptions::with_l(l)).expect("compile");
    println!(
        "compiled at L={l} in {:.2}s: {} layers, {} connections",
        t0.elapsed().as_secs_f64(),
        nn.num_layers(),
        nn.connections()
    );

    // one random (key, plaintext) pair per lane
    let mut seed = 0x853c49e6748fea9bu64;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed as u8
    };
    let keys: Vec<[u8; 16]> = (0..batch).map(|_| std::array::from_fn(|_| rng())).collect();
    let pts: Vec<[u8; 16]> = (0..batch).map(|_| std::array::from_fn(|_| rng())).collect();

    let mut sim = Simulator::new(&nn, batch, Device::Serial);
    // cycle 0: start pulse with key/pt; then 10 idle cycles while it runs
    let start_lanes: Vec<Vec<bool>> = (0..batch)
        .map(|i| {
            let mut v = vec![true];
            v.extend(pack_bytes(&keys[i]));
            v.extend(pack_bytes(&pts[i]));
            v
        })
        .collect();
    let idle_lanes: Vec<Vec<bool>> = (0..batch).map(|_| vec![false; 257]).collect();
    let start = Dense::<f32>::from_lanes(&start_lanes);
    let idle = Dense::<f32>::from_lanes(&idle_lanes);

    let t0 = Instant::now();
    sim.step(&start);
    let mut out = sim.step(&idle);
    let mut cycles = 2u64;
    for _ in 0..10 {
        let lanes = out.to_lanes();
        if lanes.iter().all(|l| l[129]) {
            break; // all lanes done
        }
        out = sim.step(&idle);
        cycles += 1;
    }
    let dt = t0.elapsed().as_secs_f64();

    // verify every lane against the software reference
    let lanes = out.to_lanes();
    for i in 0..batch {
        let ct = unpack_bytes(&lanes[i][..128]);
        let want = reference::encrypt(keys[i], pts[i]);
        assert_eq!(ct, want.to_vec(), "lane {i} ciphertext mismatch");
    }
    println!("{batch} blocks encrypted and verified in {cycles} cycles ({dt:.3}s)");
    let gcs = netlist.gate_count() as f64 * cycles as f64 * batch as f64 / dt;
    println!("measured throughput: {gcs:.3e} gates·cycles/s (single CPU core)");
}
