//! Quickstart: compile a Verilog counter into a neural network and watch
//! the network count — bit-identically to the reference gate-level
//! simulator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use c2nn::prelude::*;

const COUNTER: &str = "
  module counter(input clk, input rst, input en, output reg [7:0] q);
    always @(posedge clk) begin
      if (rst) q <= 8'd0;
      else if (en) q <= q + 8'd1;
    end
  endmodule";

fn main() {
    // 1. Verilog → gate-level netlist (the clock input is absorbed;
    //    every `step` below is one rising edge)
    let netlist = c2nn::verilog::compile(COUNTER, "counter").expect("parse + elaborate");
    println!(
        "counter: {} gates, {} flip-flops, inputs = rst,en",
        netlist.gate_count(),
        netlist.flipflops.len()
    );

    // 2. netlist → neural network (LUT size L = 4)
    let nn = compile(&netlist, CompileOptions::with_l(4)).expect("compile to NN");
    println!(
        "network: {} layers, {} connections, {:.3}% sparse",
        nn.num_layers(),
        nn.connections(),
        100.0 * nn.mean_sparsity()
    );

    // 3. simulate 4 testbenches in lockstep: each lane has its own enable
    //    pattern (lane i enables every i+1 cycles)
    let batch = 4;
    let mut sim = Simulator::new(&nn, batch, Device::Serial);
    let mut reference = CycleSim::new(&netlist).unwrap();

    println!("\ncycle   lane0 lane1 lane2 lane3   (reference lane0)");
    for cycle in 0..12u64 {
        let lanes: Vec<Vec<bool>> = (0..batch)
            .map(|lane| vec![false, cycle % (lane as u64 + 1) == 0])
            .collect();
        let x = c2nn::tensor::Dense::<f32>::from_lanes(&lanes);
        let out = sim.step(&x).to_lanes();
        let want = reference.step(&lanes[0]);
        let val =
            |bits: &[bool]| -> u32 { bits.iter().enumerate().map(|(i, &b)| (b as u32) << i).sum() };
        assert_eq!(out[0], want, "NN must match the gate-level simulator");
        println!(
            "{cycle:>5}   {:>5} {:>5} {:>5} {:>5}   ({})",
            val(&out[0]),
            val(&out[1]),
            val(&out[2]),
            val(&out[3]),
            val(&want)
        );
    }
    println!("\nNN outputs matched the reference simulator on every cycle.");
}
