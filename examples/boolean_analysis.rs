//! The mathematics under the compiler: multilinear ("Hamiltonian")
//! polynomials, Fourier spectra, influences, and noise stability (paper
//! §II-B, O'Donnell's *Analysis of Boolean Functions*).
//!
//! ```sh
//! cargo run --release --example boolean_analysis
//! ```

use c2nn::boolfn::{analysis, known, lut_to_poly, Lut};

fn main() {
    println!("== multilinear polynomials (paper Eq. 1) ==\n");
    for (name, lut) in [
        ("AND3", Lut::and(3)),
        ("OR3", Lut::or(3)),
        ("XOR3", Lut::xor(3)),
        ("MAJ3", Lut::majority(3)),
        ("MUX", Lut::mux()),
    ] {
        let p = lut_to_poly(&lut);
        println!(
            "{name:<5}  f(x) = {:<40} degree {} · {} terms",
            p.to_algebra(),
            p.degree(),
            p.num_terms()
        );
    }

    println!("\n== the paper's §V 'known function' shortcut ==\n");
    let and26 = known::and(26);
    println!(
        "AND of 26 inputs: 1 monomial of degree 26 — no 2^26-row table needed\n  f(x) = {}…",
        &and26.to_algebra()[..40.min(and26.to_algebra().len())]
    );

    println!("\n== Fourier analysis (why circuit polynomials stay sparse) ==\n");
    for (name, lut) in [
        ("MAJ5", Lut::majority(5)),
        ("XOR5", Lut::xor(5)),
        ("AND5", Lut::and(5)),
    ] {
        let coeffs = analysis::fourier_coeffs(&lut);
        let total = analysis::total_influence(&coeffs);
        let stab = analysis::noise_stability(&coeffs, 0.9);
        let weights = analysis::degree_weights(&coeffs, lut.inputs());
        let low: f64 = weights[..=2.min(weights.len() - 1)].iter().sum();
        println!(
            "{name:<5}  total influence {total:5.2}   Stab_0.9 {stab:5.3}   weight on degree ≤2: {low:5.3}"
        );
    }
    println!(
        "\nLow-degree concentration (MAJ) ⇒ few polynomial terms ⇒ sparse NN layers;\n\
         parity concentrates on the top degree ⇒ dense polynomial — the paper's\n\
         L hyperparameter caps exactly this blow-up."
    );
}
