//! Noise stability, measured two ways (paper §II-B: the multilinear
//! "Hamiltonian" representation underlies "the stability of the circuit in
//! the presence of noise").
//!
//! For a Boolean function `f` and correlation `ρ`, `Stab_ρ(f)` is the
//! expected product `f(x)·f(y)` over ±1 values when `y` is an ρ-correlated
//! copy of `x`. This demo computes it **analytically** from the Fourier
//! spectrum and **empirically** by driving the compiled neural network of
//! the same circuit with noisy input pairs — the two must agree, because
//! the network *is* the function.
//!
//! ```sh
//! cargo run --release --example noise_stability
//! ```

use c2nn::boolfn::{analysis, Lut};
use c2nn::prelude::*;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn chance(&mut self, p: f64) -> bool {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64 <= p
    }
}

/// Build a netlist computing the given truth table.
fn circuit_of(lut: &Lut) -> Netlist {
    let mut b = NetlistBuilder::new("f");
    let ins = b.input_word("x", lut.inputs() as usize);
    let out = b.synth_truth_table(&ins, lut.bits());
    b.output(out, "y");
    b.finish().unwrap()
}

fn main() {
    let rho = 0.9;
    let flip_p = (1.0 - rho) / 2.0; // per-bit flip probability
    let trials = 40_000usize;
    println!("noise stability at ρ = {rho} (per-bit flip probability {flip_p:.3})\n");
    println!(
        "{:<6} {:>12} {:>12} {:>8}",
        "f", "analytic", "empirical(NN)", "|Δ|"
    );

    let mut rng = Rng(0x5eed);
    for (name, lut) in [
        ("MAJ5", Lut::majority(5)),
        ("XOR5", Lut::xor(5)),
        ("AND5", Lut::and(5)),
        ("MUX", Lut::mux()),
    ] {
        let n = lut.inputs() as usize;
        // analytic: Σ ρ^{|S|} f̂(S)²
        let analytic = analysis::noise_stability(&analysis::fourier_coeffs(&lut), rho);

        // empirical, through the compiled network: batched pairs (x, y)
        let nn = compile(&circuit_of(&lut), CompileOptions::with_l(3)).unwrap();
        let batch = 512;
        let mut agree_sum = 0f64;
        let mut done = 0usize;
        while done < trials {
            let mut lanes = Vec::with_capacity(batch * 2);
            for _ in 0..batch {
                let x: Vec<bool> = (0..n).map(|_| rng.next() & 1 == 1).collect();
                let y: Vec<bool> = x.iter().map(|&b| b ^ rng.chance(flip_p)).collect();
                lanes.push(x);
                lanes.push(y);
            }
            let out = nn.forward(&Dense::<f32>::from_lanes(&lanes), Device::Serial);
            let bits = out.to_lanes();
            for pair in bits.chunks(2) {
                // ±1 product: +1 when equal, −1 when different
                agree_sum += if pair[0][0] == pair[1][0] { 1.0 } else { -1.0 };
            }
            done += batch;
        }
        let empirical = agree_sum / done as f64;
        println!(
            "{name:<6} {analytic:>12.4} {empirical:>12.4} {:>8.4}",
            (analytic - empirical).abs()
        );
        assert!(
            (analytic - empirical).abs() < 0.03,
            "{name}: empirical diverged from Fourier prediction"
        );
    }
    println!(
        "\nAND is the most noise-stable (low-degree spectrum), parity the least\n\
         (all weight at degree 5: Stab = ρ⁵) — the spectral story behind the\n\
         paper's sparse-polynomial hypothesis, measured on the compiled NNs."
    );
}
