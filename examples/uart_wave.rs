//! Transmit a byte through the compiled UART network and draw the serial
//! line as an ASCII waveform — a demonstration that the neural network is
//! the circuit, bit for bit, cycle for cycle.
//!
//! ```sh
//! cargo run --release --example uart_wave [BYTE]
//! ```

use c2nn::prelude::*;

fn main() {
    let byte: u8 = std::env::args()
        .nth(1)
        .and_then(|s| u8::from_str_radix(s.trim_start_matches("0x"), 16).ok())
        .unwrap_or(0x5a);

    let netlist = c2nn::circuits::uart();
    let nn = compile(&netlist, CompileOptions::with_l(5)).expect("compile");
    println!(
        "UART: {} gates → {} NN layers / {} connections\n",
        netlist.gate_count(),
        nn.num_layers(),
        nn.connections()
    );

    let mut sim = Simulator::new(&nn, 1, Device::Serial);
    // inputs: wr, wdata[8], rd, rxd — keep rxd high (idle line)
    let stim = |wr: bool, data: u8| {
        let mut v = vec![wr];
        v.extend((0..8).map(|i| data >> i & 1 == 1));
        v.push(false);
        v.push(true);
        Dense::<f32>::from_lanes(&[v])
    };

    // queue the byte, then watch txd
    sim.step(&stim(true, byte));
    let mut wave = Vec::new();
    for _ in 0..64 {
        let out = sim.step(&stim(false, 0)).to_lanes();
        wave.push(out[0][0]); // txd
    }

    println!("transmitting 0x{byte:02x} (LSB first, DIV=4 oversampling):\n");
    let hi: String = wave.iter().map(|&b| if b { '█' } else { ' ' }).collect();
    let lo: String = wave.iter().map(|&b| if b { ' ' } else { '█' }).collect();
    println!("txd=1 {hi}");
    println!("txd=0 {lo}");

    // decode the waveform back and check
    // start bit begins at the first 0; DIV=4 cycles per bit
    let start = wave.iter().position(|&b| !b).expect("start bit");
    let sample = |bit: usize| wave[start + 4 * bit + 2]; // mid-bit
    let mut decoded = 0u8;
    for i in 0..8 {
        if sample(1 + i) {
            decoded |= 1 << i;
        }
    }
    assert!(sample(9), "stop bit must be high");
    println!("\ndecoded from the waveform: 0x{decoded:02x}");
    assert_eq!(decoded, byte, "waveform must carry the byte");
    println!("matches the transmitted byte — the network is the circuit.");
}
